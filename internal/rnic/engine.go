package rnic

import (
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// The transmit engine models the property §V-C builds on: the RNIC
// pipeline processes one work request at a time, so a large WR's packets
// occupy the pipe back-to-back (paced only by DCQCN and PFC) and everything
// behind it waits. X-RDMA's fragmentation bounds that blocking time.

const engineBackoff = 2 * sim.Microsecond

func (n *NIC) enqueueJob(j *txJob) {
	n.jobs = append(n.jobs, j)
	n.kickEngine()
}

func (n *NIC) dropJobsFor(qp *QP) {
	kept := n.jobs[:0]
	for _, j := range n.jobs {
		if j.qp == qp {
			n.pool.putJob(j)
			continue
		}
		kept = append(kept, j)
	}
	n.jobs = kept
	if n.current != nil && n.current.qp == qp {
		// The in-flight packet-phase closure still references it; the
		// closure observes dead and releases it to the pool.
		n.current.dead = true
		n.current = nil
	}
}

func (n *NIC) kickEngine() {
	if n.engineBusy {
		return
	}
	n.engineBusy = true
	n.stepEngine()
}

// pickJob removes and returns the first runnable job, or nil. A job is
// runnable when its QP can transmit now (not RNR-backing-off, QP usable).
func (n *NIC) pickJob() (*txJob, sim.Time) {
	now := n.eng.Now()
	earliest := sim.MaxTime
	for i, j := range n.jobs {
		if j.dead {
			continue
		}
		qp := j.qp
		if !j.isResp && qp.State != QPRTS {
			j.dead = true
			continue
		}
		if j.isResp && qp.State != QPRTR && qp.State != QPRTS {
			j.dead = true
			continue
		}
		if j.readyAt > now {
			// Deferred responder work (read-response RxProcess charge):
			// runnable once its ready time passes, closure-free.
			if j.readyAt < earliest {
				earliest = j.readyAt
			}
			continue
		}
		if qp.rnrBackoffUntil > now {
			if qp.rnrBackoffUntil < earliest {
				earliest = qp.rnrBackoffUntil
			}
			continue
		}
		n.jobs = append(n.jobs[:i], n.jobs[i+1:]...)
		return j, 0
	}
	// Compact dead jobs.
	kept := n.jobs[:0]
	for _, j := range n.jobs {
		if !j.dead {
			kept = append(kept, j)
		} else {
			n.pool.putJob(j)
		}
	}
	n.jobs = kept
	return nil, earliest
}

func (n *NIC) stepEngine() {
	if !n.alive {
		n.engineBusy = false
		for _, j := range n.jobs {
			n.pool.putJob(j)
		}
		n.jobs = n.jobs[:0]
		// current may be held by an in-flight closure that releases it.
		n.current = nil
		return
	}
	if n.current == nil {
		job, wake := n.pickJob()
		if job == nil {
			n.engineBusy = false
			if wake != sim.MaxTime && len(n.jobs) > 0 {
				n.eng.At(wake, n.kickFn)
			}
			return
		}
		n.current = job
		cost := n.Cfg.DoorbellLatency + n.touchQP(job.qp.QPN)
		if job.wr != nil && job.wr.packets == 0 {
			n.startWR(job.qp, job.wr)
		}
		n.eng.After(cost, n.stepFn)
		return
	}
	job := n.current
	if job.dead {
		n.current = nil
		n.pool.putJob(job)
		n.stepEngine()
		return
	}
	// Local TX backpressure: PFC pause or a deep port queue stalls the
	// pipeline (and with it every queued WR — the jitter mechanism).
	if n.host.TxPaused() || n.host.TxQueueBytes() > n.Cfg.TxBacklog {
		n.eng.After(engineBackoff, n.stepFn)
		return
	}
	// DCQCN pacing.
	if wait := job.qp.paceWait(n.eng.Now()); wait > 0 {
		n.eng.After(wait, n.stepFn)
		return
	}
	pkt, size, done := n.buildPacket(job)
	job.qp.paceCharge(n.eng.Now(), size)
	n.phaseJob, n.phasePkt, n.phaseSize, n.phaseDone = job, pkt, size, done
	n.eng.After(n.Cfg.PktProcess, n.phaseFn)
}

// pktPhase is the deferred second half of a transmission step: stepEngine
// builds the packet and charges pacing, then schedules this continuation
// PktProcess later. The engine machine never has two continuations in
// flight, so the phase slots hold exactly one packet's context.
func (n *NIC) pktPhase() {
	job, pkt, size, done := n.phaseJob, n.phasePkt, n.phaseSize, n.phaseDone
	n.phaseJob, n.phasePkt = nil, nil
	if job.dead || !n.alive {
		if n.current == job {
			n.current = nil
		}
		n.pool.putJob(job)
		n.freePacket(pkt) // never hit the wire
		n.stepEngine()
		return
	}
	n.emit(pkt)
	n.Counters.PktsSent++
	n.Counters.BytesSent += int64(size)
	job.qp.rate.onBytes(size)
	// The RTO measures silence after transmission, not transfer
	// duration: refresh it while packets are still going out.
	if job.wr != nil && len(job.qp.unacked) > 0 {
		job.qp.armRTO()
	}
	if done {
		n.finishJob(job)
		n.current = nil
		n.pool.putJob(job)
	}
	n.stepEngine()
}

// startWR assigns the PSN range, moves the WR to the unacked list and arms
// the retransmission timer. RDMA READs join the same PSN stream as sends
// (IB-style: the request carries the first PSN and the response segments
// consume the requester's PSN space), so one go-back-N timer covers
// everything — there is no separate read-reliability plane.
func (n *NIC) startWR(qp *QP, wr *SendWR) {
	// Remove from sq.
	for i, w := range qp.sq {
		if w == wr {
			qp.sq = append(qp.sq[:i], qp.sq[i+1:]...)
			break
		}
	}
	wr.startedAt = n.eng.Now()
	pkts := (wr.Len + n.Cfg.MTU - 1) / n.Cfg.MTU
	if pkts == 0 {
		pkts = 1
	}
	wr.packets = pkts
	wr.firstPSN = qp.nextPSN
	wr.lastPSN = qp.nextPSN + uint32(pkts) - 1
	qp.nextPSN += uint32(pkts)
	if wr.Op == OpRead {
		// One request packet on the wire; pkts PSNs reserved for the
		// response stream. The cursor tracks response acceptance.
		if qp.pendingReads == nil {
			qp.pendingReads = make(map[uint64]*readState)
		}
		readID := wr.ID ^ (uint64(qp.QPN) << 48)
		rs := n.pool.readState()
		rs.wr = wr
		rs.nextPSN = wr.firstPSN
		qp.pendingReads[readID] = rs
	}
	qp.unacked = append(qp.unacked, wr)
	qp.armRTO()
}

// buildPacket produces the next packet of the current job and reports the
// payload size and whether the job is finished.
func (n *NIC) buildPacket(job *txJob) (*fabric.Packet, int, bool) {
	qp := job.qp
	mtu := n.Cfg.MTU
	if job.isResp {
		seg := job.respLen - job.offset
		if seg > mtu {
			seg = mtu
		}
		idx := 0
		if mtu > 0 {
			idx = job.offset / mtu
		}
		h := n.pool.hdr()
		h.SrcQPN, h.DstQPN = qp.QPN, job.respQPN
		h.Op, h.MsgLen, h.Offset = opReadResp, job.respLen, job.offset
		// Response segments carry the requester's PSNs (the range the READ
		// request reserved), so the requester accepts them in order with
		// the same sequencing rules as everything else.
		h.PSN = job.respPSN + uint32(idx)
		h.First, h.Last = job.offset == 0, job.offset+seg >= job.respLen
		h.ReadID = job.readID
		if job.respData != nil {
			h.Data = job.respData[job.offset : job.offset+seg]
		}
		job.offset += seg
		p := n.fab.NewPacket()
		p.Src, p.Dst, p.Size = n.Node, job.respTo, seg+16
		p.FlowHash, p.ECT, p.Payload = qp.flowHash, true, h
		return p, seg + 16, h.Last
	}

	wr := job.wr
	seg := wr.Len - job.offset
	if seg > mtu {
		seg = mtu
	}
	if seg < 0 {
		seg = 0
	}
	idx := 0
	if mtu > 0 {
		idx = job.offset / mtu
	}
	h := n.pool.hdr()
	h.SrcQPN, h.DstQPN = qp.QPN, qp.RemoteQPN
	h.Op, h.PSN = wr.Op, wr.firstPSN+uint32(idx)
	h.MsgID, h.MsgLen, h.Offset = wr.ID, wr.Len, job.offset
	h.First, h.Last = job.offset == 0, job.offset+seg >= wr.Len
	if h.First {
		h.RAddr, h.RKey = wr.RAddr, wr.RKey
		if wr.Op == OpRead {
			h.ReadID = wr.ID ^ (uint64(qp.QPN) << 48)
			h.Last = true
		}
	}
	if h.Last && (wr.Op == OpSendImm || wr.Op == OpWriteImm) {
		h.Imm = wr.Imm
	}
	// wr.Data may be shorter than wr.Len (a real header followed by a
	// size-only payload); carry whatever bytes exist for this segment.
	if wr.Data != nil && seg > 0 && wr.Op != OpRead && job.offset < len(wr.Data) {
		end := job.offset + seg
		if end > len(wr.Data) {
			end = len(wr.Data)
		}
		h.Data = wr.Data[job.offset:end]
	}
	wire := seg + 16
	if wr.Op == OpRead {
		wire = 32 // request carries no payload
	}
	job.offset += seg
	p := n.fab.NewPacket()
	p.Src, p.Dst, p.Size = n.Node, qp.RemoteNode, wire
	p.FlowHash, p.ECT, p.Payload = qp.flowHash, true, h
	if wr.Blame != nil {
		// Propagate the trace bit: the fabric stamps hop residency into
		// the accumulator, and the header carries it to the receiver so
		// reassembly and dispatch can be attributed too.
		h.Blame, p.Blame = wr.Blame, wr.Blame
	}
	done := h.Last || wr.Op == OpRead
	return p, wire, done
}

func (n *NIC) finishJob(job *txJob) {
	if job.isResp {
		return
	}
	wr := job.wr
	if wr.finishedAt == 0 {
		// First-pass emission only: a retransmitted WR re-enters the tx
		// pipeline and finishes again, but that residency is loss
		// recovery (blamed via the QP recovery counters), not
		// serialization.
		wr.finishedAt = n.eng.Now()
	}
	n.Counters.MsgsSent++
	job.qp.Counters.MsgsSent++
	job.qp.Counters.BytesSent += int64(wr.Len)
}

// emit puts a packet on the wire, subject to the fault-injection hook.
func (n *NIC) emit(p *fabric.Packet) {
	if n.FaultHook != nil {
		drop, delay := n.FaultHook(p)
		if drop {
			n.freePacket(p)
			return
		}
		if delay > 0 {
			n.eng.After(delay, func() { n.host.Send(p) })
			return
		}
	}
	n.host.Send(p)
}

// freePacket reclaims a packet (and its header) that never reached the
// wire: fault-injected drops and jobs killed mid-transmission.
func (n *NIC) freePacket(p *fabric.Packet) {
	if h, ok := p.Payload.(*hdr); ok {
		n.pool.putHdr(h)
	}
	n.fab.FreePacket(p)
}

// sendCtrl emits a small control packet (ACK/NAK/CNP). The header is
// passed by value and copied onto a pooled node.
func (n *NIC) sendCtrl(dst fabric.NodeID, h hdr) {
	hp := n.pool.hdr()
	*hp = h
	p := n.fab.NewPacket()
	p.Src, p.Dst, p.Size = n.Node, dst, 16
	p.Class, p.Payload = fabric.ClassCtrl, hp
	n.emit(p)
}

// --- pacing --------------------------------------------------------------

func (qp *QP) paceWait(now sim.Time) sim.Duration {
	if qp.nextTxTime > now {
		return qp.nextTxTime.Sub(now)
	}
	return 0
}

func (qp *QP) paceCharge(now sim.Time, bytes int) {
	rate := qp.rate.Rate()
	if rate <= 0 {
		return // unlimited
	}
	d := sim.Duration(int64(bytes) * 8 * int64(sim.Second) / rate)
	base := qp.nextTxTime
	if now > base {
		base = now
	}
	qp.nextTxTime = base.Add(d)
}

// --- retransmission -------------------------------------------------------

// armRTO ensures a retransmission deadline is pending whenever unacked WRs
// exist. Posting a new WR must NOT push an armed deadline back: a shared QP
// kept busy by many multiplexed channels (window-exempt control frames can
// arrive faster than RetransTimeout) would otherwise starve the RTO and
// never recover a lost frame.
func (qp *QP) armRTO() {
	n := qp.nic
	if len(qp.unacked) == 0 {
		n.eng.Cancel(qp.rtoEvent)
		qp.rtoEvent = sim.Event{}
		return
	}
	if qp.rtoEvent.Pending() {
		return
	}
	qp.rtoEvent = n.eng.After(n.Cfg.RetransTimeout, qp.rtoFn)
}

// resetRTO restarts the deadline — the classic go-back-N timer restart on
// forward progress of the cumulative ack.
func (qp *QP) resetRTO() {
	qp.nic.eng.Cancel(qp.rtoEvent)
	qp.rtoEvent = sim.Event{}
	qp.armRTO()
}

func (qp *QP) onRTO() {
	n := qp.nic
	if qp.State != QPRTS || len(qp.unacked) == 0 {
		return
	}
	qp.retries++
	if qp.retries > n.Cfg.RetryLimit {
		qp.enterError(StatusRetryExceeded)
		return
	}
	n.Counters.Retransmits++
	qp.Counters.Retransmits++
	// The timeout itself is the recovery residency: the wire was silent
	// for a full RTO before go-back-N kicked in.
	qp.Counters.RTORecoveryNs += int64(n.Cfg.RetransTimeout)
	n.tel.Flight.Record(n.eng.Now(), telemetry.CatRetransmit, int32(n.Node), qp.QPN, int64(qp.retries), 0)
	n.tel.Trace.Instant("retransmit", n.track, n.eng.Now(), int64(qp.QPN))
	qp.retransmitUnacked()
	qp.armRTO()
}

// retransmitUnacked re-enqueues every unacked WR that is not already
// queued or in flight on the engine (go-back-N at WR granularity; PSNs are
// preserved so the responder can discard what it already has).
func (qp *QP) retransmitUnacked() {
	n := qp.nic
	queued := make(map[*SendWR]bool)
	for _, j := range n.jobs {
		if j.wr != nil && !j.dead {
			queued[j.wr] = true
		}
	}
	if n.current != nil && n.current.wr != nil && !n.current.dead {
		queued[n.current.wr] = true
	}
	for _, wr := range qp.unacked {
		if queued[wr] {
			continue
		}
		// READs included: the re-enqueued job re-emits the request packet
		// with its original PSN, and the responder re-services it
		// idempotently (statelessly, from the PSN and length it carries).
		j := n.pool.job()
		j.qp, j.wr = qp, wr
		n.enqueueJob(j)
	}
}

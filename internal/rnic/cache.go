package rnic

import (
	"container/list"

	"xrdma/internal/sim"
)

// qpCache models the RNIC's on-chip QP context SRAM. A context miss costs
// a PCIe round trip to fetch state from host memory. The paper's §VII-F
// observation — "cache influence on performance is almost below 10% even
// when the number of QP grows up to 60K" — falls out of the small miss
// cost relative to end-to-end latency; the E11 sweep verifies it.
type qpCache struct {
	cap  int
	ll   *list.List               // front = most recent
	elem map[uint32]*list.Element // qpn → node
}

func newQPCache(capacity int) *qpCache {
	return &qpCache{cap: capacity, ll: list.New(), elem: make(map[uint32]*list.Element)}
}

// touch marks the QP context used and reports whether it was a miss.
func (c *qpCache) touch(qpn uint32) bool {
	if c.cap <= 0 {
		return false // cache modelling disabled
	}
	if e, ok := c.elem[qpn]; ok {
		c.ll.MoveToFront(e)
		return false
	}
	if c.ll.Len() >= c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.elem, back.Value.(uint32))
	}
	c.elem[qpn] = c.ll.PushFront(qpn)
	return true
}

// touchQP accounts a context access and returns the added latency.
func (n *NIC) touchQP(qpn uint32) sim.Duration {
	if n.cache.touch(qpn) {
		n.Counters.QPCacheMisses++
		return n.Cfg.QPCacheMissCost
	}
	n.Counters.QPCacheHits++
	return 0
}

package rnic

import (
	"errors"
	"fmt"

	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// QPState is the RC queue-pair state machine (a subset: the states the
// middleware actually drives through).
type QPState uint8

const (
	QPReset QPState = iota
	QPInit
	QPRTR // ready to receive
	QPRTS // ready to send
	QPError
)

func (s QPState) String() string {
	return [...]string{"RESET", "INIT", "RTR", "RTS", "ERROR"}[s]
}

// Status is a completion status.
type Status uint8

const (
	StatusOK Status = iota
	StatusRetryExceeded
	StatusRNRRetryExceeded
	StatusRemoteAccessErr
	StatusFlushed // QP torn down with the WR outstanding
)

func (s Status) String() string {
	return [...]string{"OK", "RETRY_EXC", "RNR_RETRY_EXC", "REM_ACCESS_ERR", "FLUSHED"}[s]
}

// CQE is a completion queue entry.
type CQE struct {
	WRID   uint64
	QPN    uint32
	Op     Op
	Status Status
	Len    int
	Imm    uint32
	HasImm bool
	// Recv-side: where the message landed.
	Addr uint64
	// Data aliases the received payload when payloads are carried.
	Data []byte
	// Blame carries the blame-trace accumulator of a traced inbound
	// message up to the middleware (nil otherwise).
	Blame *telemetry.PktBlame
}

// CQ is a completion queue. Depth is advisory: overflow is counted rather
// than fatal (real CQ overflow kills the QP; the middleware sizes CQs so
// it never happens, and the counter proves it). Entries live in a circular
// buffer, so steady-state push/poll cycles never allocate.
type CQ struct {
	Depth     int
	Overflows int64
	buf       []CQE
	head, cnt int
	notify    func()
}

// NewCQ creates a completion queue with the given depth.
func NewCQ(depth int) *CQ { return &CQ{Depth: depth} }

// OnCompletion installs a wakeup callback fired whenever a CQE is added to
// an empty queue — the comp-channel analogue used for event-mode polling.
func (cq *CQ) OnCompletion(fn func()) { cq.notify = fn }

func (cq *CQ) push(e CQE) {
	if cq.Depth > 0 && cq.cnt >= cq.Depth {
		cq.Overflows++
	}
	if cq.cnt == len(cq.buf) {
		cq.grow()
	}
	cq.buf[(cq.head+cq.cnt)&(len(cq.buf)-1)] = e
	cq.cnt++
	if cq.cnt == 1 && cq.notify != nil {
		cq.notify()
	}
}

func (cq *CQ) grow() {
	n := len(cq.buf) * 2
	if n == 0 {
		n = 16
	}
	nb := make([]CQE, n)
	for i := 0; i < cq.cnt; i++ {
		nb[i] = cq.buf[(cq.head+i)&(len(cq.buf)-1)]
	}
	cq.buf, cq.head = nb, 0
}

// PollAppend drains up to max completions into dst and returns the
// extended slice. Passing a reused dst[:0] makes polling allocation-free;
// vacated ring slots are cleared so payload references do not linger.
func (cq *CQ) PollAppend(dst []CQE, max int) []CQE {
	n := max
	if n > cq.cnt {
		n = cq.cnt
	}
	for i := 0; i < n; i++ {
		idx := cq.head & (len(cq.buf) - 1)
		dst = append(dst, cq.buf[idx])
		cq.buf[idx] = CQE{}
		cq.head++
	}
	cq.cnt -= n
	return dst
}

// Poll removes up to n completions. Convenience wrapper around PollAppend
// that allocates the result; hot paths should use PollAppend directly.
func (cq *CQ) Poll(n int) []CQE {
	if n > cq.cnt {
		n = cq.cnt
	}
	if n == 0 {
		return nil
	}
	return cq.PollAppend(make([]CQE, 0, n), n)
}

// Len reports queued completions.
func (cq *CQ) Len() int { return cq.cnt }

// SendWR is a send-queue work request.
type SendWR struct {
	ID    uint64
	Op    Op
	Len   int
	Data  []byte // optional payload (nil → size-only simulation)
	Local uint64 // local buffer address (diagnostics; Data carries bytes)

	// One-sided target.
	RAddr uint64
	RKey  uint32

	Imm uint32

	// Unsignaled WRs produce no CQE on success (X-RDMA uses this for
	// keepalive probes and acks to keep CQ pressure down).
	Unsignaled bool

	// Blame, when non-nil, marks the WR blame-traced: every packet it
	// produces carries this accumulator as its trace bit so the fabric
	// stamps hop residency into it.
	Blame *telemetry.PktBlame

	// internal
	firstPSN, lastPSN uint32
	packets           int
	postedAt          sim.Time
	startedAt         sim.Time
	finishedAt        sim.Time
}

// TxTimes reports when the WR was posted to the SQ, started occupying
// the transmit pipeline, and emitted its last packet — the stamps blame
// tracing decomposes into SQ-wait and serialization stages. Zero values
// mean the phase has not happened (yet).
func (wr *SendWR) TxTimes() (posted, started, finished sim.Time) {
	return wr.postedAt, wr.startedAt, wr.finishedAt
}

// RecvWR is a receive-queue work request: a buffer for one incoming
// message.
type RecvWR struct {
	ID   uint64
	Addr uint64
	Len  int
}

// SRQ is a shared receive queue (§VII-F "Pay attention to SRQ").
type SRQ struct {
	Depth int
	queue []RecvWR
	// Posted counts total WQEs ever posted (monitoring).
	Posted int64
}

// NewSRQ creates a shared receive queue.
func NewSRQ(depth int) *SRQ { return &SRQ{Depth: depth} }

// Post adds a receive buffer; errors when full.
func (s *SRQ) Post(wr RecvWR) error {
	if len(s.queue) >= s.Depth {
		return errors.New("rnic: SRQ full")
	}
	s.queue = append(s.queue, wr)
	s.Posted++
	return nil
}

// Len reports available receive WQEs.
func (s *SRQ) Len() int { return len(s.queue) }

func (s *SRQ) take() (RecvWR, bool) {
	if len(s.queue) == 0 {
		return RecvWR{}, false
	}
	wr := s.queue[0]
	s.queue = s.queue[1:]
	return wr, true
}

// QPCounters are per-QP statistics exposed to XR-Stat.
type QPCounters struct {
	MsgsSent, MsgsRecv   int64
	BytesSent, BytesRecv int64
	RNRNakRecv           int64 // we sent and peer wasn't ready
	RNRNakSent           int64 // we weren't ready
	Retransmits          int64
	CNPRecv              int64
	SeqNakRecv           int64
	CorruptDrops         int64 // inbound frames for this QP that failed FCS
	RemoteAccessErrs     int64 // rkey/bounds violations (detected or NAKed back)

	// Cumulative recovery residency, nanoseconds: time this QP spent
	// waiting out retransmission timeouts and RNR backoffs. Blame
	// tracing attributes per-message recovery time from deltas of
	// these between request issue and response arrival.
	RTORecoveryNs int64
	RNRRecoveryNs int64
}

// QP is an RC queue pair.
type QP struct {
	QPN    uint32
	nic    *NIC
	State  QPState
	SQCap  int
	RQCap  int
	SendCQ *CQ
	RecvCQ *CQ
	srq    *SRQ

	// Connection identity, set at RTR. flowBase is the connection's
	// canonical ECMP flow key; flowLabel is the mutable RoCEv2
	// UDP-source-port analogue the middleware rotates to steer the flow
	// onto a different equal-cost path, and flowHash is the effective key
	// stamped into every outbound packet (flowBase perturbed by the
	// label).
	RemoteNode fabric.NodeID
	RemoteQPN  uint32
	flowBase   uint64
	flowLabel  uint64
	flowHash   uint64

	// Transmit side.
	sq              []*SendWR
	nextPSN         uint32
	unacked         []*SendWR // in flight, oldest first
	msgSeq          uint64
	rnrBackoffUntil sim.Time
	retries         int
	rnrRetries      int
	rtoEvent        sim.Event
	nextTxTime      sim.Time
	pendingReads    map[uint64]*readState
	lastSeenAck     uint32

	// CQE ordering watermarks: completion costs vary (QP-cache misses),
	// but completions for one QP must never overtake each other.
	sendCQAt sim.Time
	recvCQAt sim.Time

	// Receive side.
	rq           []RecvWR
	expected     uint32 // next expected PSN
	assemble     *assembly
	pktsSinceAck int
	ackTimer     sim.Event
	nakedAt      uint32 // last PSN we NAKed, to suppress NAK storms
	nakValid     bool

	// Cached timer/completion closures plus the FIFO of ack-retired WRs
	// awaiting their send CQE. Built once at QP allocation and preserved
	// across QP reset (pending drains may still reference the FIFO, the
	// same lifetime the old per-WR closures had); handleAck appends a WR
	// and schedules exactly one drain per entry, and pushSendCQE's
	// monotonic per-QP timestamps keep the drains in FIFO order, so the
	// index — not a fresh closure — carries the per-WR context.
	rtoFn     func()
	ackFn     func()
	cqeDoneFn func()
	cqeDone   []*SendWR
	cqeHead   int

	// DCQCN rate state.
	rate *dcqcnState

	Counters QPCounters

	// CreatedAt / lastComm support keepalive diagnostics.
	CreatedAt sim.Time
	LastComm  sim.Time
}

// assembly tracks an in-progress multi-packet inbound message.
type assembly struct {
	op     Op
	msgLen int
	got    int
	recvWR RecvWR
	hasWR  bool
	mr     *MR    // write target region
	raddr  uint64 // write target address
	data   []byte // gathered payload when packets carry bytes
	blame  *telemetry.PktBlame
}

// readState tracks an outstanding RDMA READ at the requester: the
// response-stream cursor (next expected PSN within the WR's allocated
// range) and the gathered payload. Reliability is NOT tracked here — the
// READ WR sits in qp.unacked like any send, so loss anywhere in the
// request/response exchange is recovered by the one go-back-N RTO.
type readState struct {
	wr      *SendWR
	got     int
	data    []byte
	nextPSN uint32
}

// errors returned by the posting API.
var (
	ErrQPState = errors.New("rnic: QP in wrong state")
	ErrSQFull  = errors.New("rnic: send queue full")
	ErrRQFull  = errors.New("rnic: receive queue full")
)

// FlowHash reports the effective ECMP flow key stamped into this QP's
// outbound packets (diagnostics; path-doctor tooling predicts the leaf
// choice with fabric.ECMPIndex).
func (qp *QP) FlowHash() uint64 { return qp.flowHash }

// FlowLabel reports the current flow label (0 = the canonical path).
func (qp *QP) FlowLabel() uint64 { return qp.flowLabel }

// PostRecv queues a receive buffer.
func (qp *QP) PostRecv(wr RecvWR) error {
	if qp.srq != nil {
		return errors.New("rnic: QP bound to SRQ; post to the SRQ")
	}
	if qp.State == QPReset || qp.State == QPError {
		return fmt.Errorf("%w: %v", ErrQPState, qp.State)
	}
	if len(qp.rq) >= qp.RQCap {
		return ErrRQFull
	}
	qp.rq = append(qp.rq, wr)
	return nil
}

// RecvQueueLen reports available receive WQEs.
func (qp *QP) RecvQueueLen() int {
	if qp.srq != nil {
		return qp.srq.Len()
	}
	return len(qp.rq)
}

// SendQueueLen reports WRs posted but not yet completed.
func (qp *QP) SendQueueLen() int { return len(qp.sq) + len(qp.unacked) }

// PostSend queues a work request for transmission. The NIC engine picks it
// up asynchronously; completion arrives on SendCQ.
func (qp *QP) PostSend(wr *SendWR) error {
	if qp.State != QPRTS {
		return fmt.Errorf("%w: %v (need RTS)", ErrQPState, qp.State)
	}
	if len(qp.sq)+len(qp.unacked) >= qp.SQCap {
		return ErrSQFull
	}
	if wr.Op == OpRead && wr.Len > 0 && wr.RKey == 0 {
		return fmt.Errorf("rnic: READ without rkey")
	}
	wr.postedAt = qp.nic.eng.Now()
	qp.sq = append(qp.sq, wr)
	j := qp.nic.pool.job()
	j.qp, j.wr = qp, wr
	qp.nic.enqueueJob(j)
	return nil
}

func (qp *QP) takeRecv() (RecvWR, bool) {
	if qp.srq != nil {
		return qp.srq.take()
	}
	if len(qp.rq) == 0 {
		return RecvWR{}, false
	}
	wr := qp.rq[0]
	qp.rq = qp.rq[1:]
	return wr, true
}

// enterError flushes all outstanding work with the given status and marks
// the QP broken. The middleware observes this via flushed CQEs (and via
// keepalive timeouts when the peer is gone).
func (qp *QP) enterError(st Status) {
	if qp.State == QPError {
		return
	}
	qp.State = QPError
	n := qp.nic
	now := n.eng.Now()
	n.tel.Flight.Record(now, telemetry.CatQPError, int32(n.Node), qp.QPN, int64(st), 0)
	n.tel.Trace.Instant("qp.error", n.track, now, int64(st))
	// Retry exhaustion is a broken protocol invariant: freeze the flight
	// recorder so the dump shows what led up to it.
	switch st {
	case StatusRetryExceeded:
		n.tel.Flight.Trip(now, telemetry.CatRetryExhausted, int32(n.Node), qp.QPN)
	case StatusRNRRetryExceeded:
		n.tel.Flight.Trip(now, telemetry.CatRNRStorm, int32(n.Node), qp.QPN)
	}
	qp.nic.eng.Cancel(qp.rtoEvent)
	qp.rtoEvent = sim.Event{}
	qp.nic.eng.Cancel(qp.ackTimer)
	qp.ackTimer = sim.Event{}
	// READ WRs are members of both pendingReads (response-stream cursor)
	// and unacked (reliability); drop the cursors without completing so the
	// unacked flush below raises exactly one CQE per WR.
	for id, rs := range qp.pendingReads {
		delete(qp.pendingReads, id)
		n.pool.putReadState(rs)
	}
	for _, wr := range qp.unacked {
		qp.completeSend(wr, st)
	}
	qp.unacked = nil
	for _, wr := range qp.sq {
		qp.completeSend(wr, st)
	}
	qp.sq = nil
	qp.nic.dropJobsFor(qp)
}

// drainSendOK completes the oldest ack-retired WR from the cqeDone FIFO.
// handleAck appends one WR and schedules one drain per entry, and
// pushSendCQE's monotonic per-QP timestamps preserve FIFO order, so head
// position alone identifies the WR each drain belongs to.
func (qp *QP) drainSendOK() {
	wr := qp.cqeDone[qp.cqeHead]
	qp.cqeDone[qp.cqeHead] = nil
	qp.cqeHead++
	if qp.cqeHead == len(qp.cqeDone) {
		qp.cqeDone = qp.cqeDone[:0]
		qp.cqeHead = 0
	}
	qp.completeSend(wr, StatusOK)
}

func (qp *QP) completeSend(wr *SendWR, st Status) {
	if wr.Unsignaled && st == StatusOK {
		return
	}
	cqe := CQE{WRID: wr.ID, QPN: qp.QPN, Op: wr.Op, Status: st, Len: wr.Len, Imm: wr.Imm}
	if wr.Op == OpRead && st == StatusOK {
		// handleReadResp parked the gathered payload on the WR so the
		// shared cqeDone FIFO can complete READs closure-free.
		cqe.Data = wr.Data
	}
	qp.SendCQ.push(cqe)
}

// pushSendCQE schedules a send completion after d, never before an earlier
// completion on the same QP.
func (qp *QP) pushSendCQE(d sim.Duration, fn func()) {
	at := qp.nic.eng.Now().Add(d)
	if at < qp.sendCQAt {
		at = qp.sendCQAt
	}
	qp.sendCQAt = at
	qp.nic.eng.At(at, fn)
}

// pushRecvCQE schedules a receive completion after d with the same
// ordering guarantee.
func (qp *QP) pushRecvCQE(d sim.Duration, fn func()) {
	at := qp.nic.eng.Now().Add(d)
	if at < qp.recvCQAt {
		at = qp.recvCQAt
	}
	qp.recvCQAt = at
	qp.nic.eng.At(at, fn)
}

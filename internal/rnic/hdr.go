package rnic

import "xrdma/internal/telemetry"

// Op is the RDMA opcode carried in a work request / wire header.
type Op uint8

const (
	OpSend Op = iota
	OpSendImm
	OpWrite
	OpWriteImm
	OpRead
	// opReadResp is internal: data packets flowing back for an OpRead.
	opReadResp
	// opAck / opNak are hardware acknowledgement control packets.
	opAck
	opNak
	// opCNP is a DCQCN congestion notification packet.
	opCNP
)

func (o Op) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpSendImm:
		return "SEND_IMM"
	case OpWrite:
		return "WRITE"
	case OpWriteImm:
		return "WRITE_IMM"
	case OpRead:
		return "READ"
	case opReadResp:
		return "READ_RESP"
	case opAck:
		return "ACK"
	case opNak:
		return "NAK"
	case opCNP:
		return "CNP"
	}
	return "?"
}

// IsRecvConsuming reports whether a message with this opcode consumes a
// receive WQE at the responder (SENDs always; WRITE only with immediate).
func (o Op) IsRecvConsuming() bool {
	return o == OpSend || o == OpSendImm || o == OpWriteImm
}

// nakCode distinguishes NAK causes.
type nakCode uint8

const (
	nakSeqErr nakCode = iota // packet loss: go-back-N from PSN
	nakRNR                   // receiver not ready: retry after RNR timer
	nakAccess                // remote access violation: fatal to the QP
)

// hdr is the wire header each fabric packet carries in Packet.Payload.
// It is deliberately close to an IB BTH+RETH/AETH union.
type hdr struct {
	SrcQPN, DstQPN uint32
	Op             Op
	PSN            uint32

	// Message framing (data packets).
	MsgID  uint64 // per-QP message counter, diagnostic
	MsgLen int    // total message payload length
	Offset int    // this packet's offset within the message
	First  bool
	Last   bool

	// RETH fields for one-sided ops (valid on First).
	RAddr uint64
	RKey  uint32

	// Immediate data (valid on Last of *Imm ops).
	Imm uint32

	// AETH fields for opAck/opNak.
	AckPSN uint32 // cumulative: all PSNs < AckPSN received
	Nak    nakCode

	// Read: requester-chosen id so the response can complete the WR,
	// echoed by opReadResp packets.
	ReadID uint64

	// Data is the packet's payload slice (nil for header-only packets
	// and for size-only simulations).
	Data []byte

	// Blame carries the message's trace accumulator to the receiving
	// NIC (nil unless the message is blame-sampled), so reassembly and
	// delivery can stamp into it and hand it up through the CQE.
	Blame *telemetry.PktBlame
}

// hdrWireBytes approximates the RoCEv2 header overhead already included in
// fabric.EthOverhead; data packet Size is payload-only.
const hdrWireBytes = 0

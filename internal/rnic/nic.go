package rnic

import (
	"fmt"

	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// Config holds the NIC timing and protocol parameters. Defaults
// approximate a ConnectX-4 Lx class device.
type Config struct {
	DoorbellLatency sim.Duration // MMIO doorbell + WQE fetch over PCIe
	PktProcess      sim.Duration // per-packet pipeline occupancy (TX)
	RxProcess       sim.Duration // per-packet RX processing + DMA
	CompletionCost  sim.Duration // CQE generation + host visibility

	MTU int

	RetransTimeout sim.Duration // RTO for go-back-N
	RetryLimit     int
	RNRTimer       sim.Duration // backoff after an RNR NAK
	RNRRetryLimit  int

	AckEvery int          // coalesce: ack every N packets
	AckDelay sim.Duration // ...or after this delay

	CNPInterval sim.Duration // min per-flow CNP spacing at the notification point

	// QP context cache (on-NIC SRAM).
	QPCacheEntries  int
	QPCacheMissCost sim.Duration

	// TxBacklog limits how far ahead of the wire the engine runs: the
	// engine stalls while the host port has this much queued.
	TxBacklog int

	DCQCN DCQCNConfig
}

// DefaultConfig returns ConnectX-4-like parameters.
func DefaultConfig() Config {
	return Config{
		DoorbellLatency: 250 * sim.Nanosecond,
		PktProcess:      60 * sim.Nanosecond,
		RxProcess:       250 * sim.Nanosecond,
		CompletionCost:  150 * sim.Nanosecond,
		MTU:             4096,
		// RC local-ack-timeout: real deployments run 2^14 × 4.096 µs
		// ≈ 67 ms; 16 ms keeps tests fast while staying far above any
		// legitimate queueing delay.
		// RC local-ack-timeout: real deployments run tens of ms (the IB
		// default is 2^14 x 4.096 us ~ 67 ms). 20 ms sits above the ack
		// delays a PFC pause storm can cause — tighter values make the
		// NIC retransmit spuriously under congestion and collapse.
		RetransTimeout:  20 * sim.Millisecond,
		RetryLimit:      6,
		RNRTimer:        60 * sim.Microsecond,
		RNRRetryLimit:   64, // "infinite" in production profiles; 7 breaks connections
		AckEvery:        4,
		AckDelay:        4 * sim.Microsecond,
		CNPInterval:     50 * sim.Microsecond,
		QPCacheEntries:  1024,
		QPCacheMissCost: 120 * sim.Nanosecond,
		TxBacklog:       32 << 10,
		DCQCN:           DefaultDCQCN(),
	}
}

// Counters aggregates NIC-wide statistics (XR-Stat's raw data).
type Counters struct {
	MsgsSent, MsgsRecv     int64
	BytesSent, BytesRecv   int64
	PktsSent, PktsRecv     int64
	AcksSent, AcksRecv     int64
	RNRNakSent, RNRNakRecv int64
	SeqNakSent, SeqNakRecv int64
	Retransmits            int64
	CNPSent, CNPRecv       int64
	AccessErrors           int64 // remote-access (rkey/bounds) violations, both ends
	LocalProtErrs          int64 // local scatter targets that resolved to no MR
	QPCacheMisses          int64
	QPCacheHits            int64
	CorruptDrops           int64
}

// txJob is one unit of engine work: transmit (part of) a WR's packets, or
// stream a read response.
type txJob struct {
	qp     *QP
	wr     *SendWR // nil for read responses
	isResp bool
	// read-response fields
	respTo   fabric.NodeID
	respQPN  uint32
	readID   uint64
	respData []byte
	respLen  int
	respPSN  uint32 // requester PSN base the response stream carries
	// readyAt defers the job (responder-side RxProcess charge) without a
	// per-job closure; pickJob skips it until the time passes.
	readyAt sim.Time
	// progress
	offset int
	dead   bool
	pooled bool // on the free-list; guards against double-release
}

// NIC is one node's RDMA adapter.
type NIC struct {
	Node fabric.NodeID
	Mem  *Memory
	Cfg  Config

	eng  *sim.Engine
	host *fabric.Host
	fab  *fabric.Fabric
	pool *pools

	alive bool

	qps     map[uint32]*QP
	nextQPN uint32

	// Transmit engine.
	jobs       []*txJob
	current    *txJob
	engineBusy bool

	// Cached engine continuations and the deferred packet-phase slots.
	// The tx machine is strictly sequential — at most one continuation
	// event is outstanding per NIC — so every per-packet schedule reuses
	// these closures and fields instead of allocating.
	stepFn    func()
	kickFn    func()
	phaseFn   func()
	phaseJob  *txJob
	phasePkt  *fabric.Packet
	phaseSize int
	phaseDone bool

	// Hardware command queue: QP create/modify commands serialize here
	// (the §VII-C establishment bottleneck).
	cmdBusy  bool
	cmdQueue []hwCmd

	// QP context cache.
	cache *qpCache

	// DCQCN notification point state: last CNP time per remote flow.
	lastCNP map[uint64]sim.Time

	Counters Counters

	// Telemetry: handles pre-resolved at creation so protocol code never
	// does a registry lookup. track is this NIC's timeline thread name.
	tel       *telemetry.Set
	track     string
	dcqcnCuts telemetry.Counter

	// FaultHook, when set, inspects every outbound packet; returning
	// false drops it, and a returned delay defers it. X-RDMA's Filter
	// (§VI-C) installs this.
	FaultHook func(p *fabric.Packet) (drop bool, delay sim.Duration)
}

type hwCmd struct {
	cost sim.Duration
	fn   func()
}

// New attaches a NIC to a fabric host.
func New(eng *sim.Engine, host *fabric.Host, cfg Config) *NIC {
	n := &NIC{
		Node:    host.ID,
		Mem:     NewMemory(),
		Cfg:     cfg,
		eng:     eng,
		host:    host,
		fab:     host.Fabric(),
		pool:    poolsFor(eng),
		alive:   true,
		qps:     make(map[uint32]*QP),
		nextQPN: 1,
		lastCNP: make(map[uint64]sim.Time),
		cache:   newQPCache(cfg.QPCacheEntries),
		tel:     telemetry.For(eng),
	}
	n.stepFn = n.stepEngine
	n.kickFn = n.kickEngine
	n.phaseFn = n.pktPhase
	n.track = fmt.Sprintf("rnic.%d", host.ID)
	n.dcqcnCuts = n.tel.Reg.Counter(n.track + ".dcqcn_cuts")
	n.registerGauges()
	host.Attach(n)
	return n
}

// registerGauges exposes the NIC-wide counters through the registry.
// GaugeFuncs read the existing fields only at snapshot time, so the
// protocol hot paths keep their plain increments.
func (n *NIC) registerGauges() {
	reg, c := n.tel.Reg, &n.Counters
	for _, g := range []struct {
		name string
		fn   func() int64
	}{
		{"msgs_sent", func() int64 { return c.MsgsSent }},
		{"msgs_recv", func() int64 { return c.MsgsRecv }},
		{"bytes_sent", func() int64 { return c.BytesSent }},
		{"bytes_recv", func() int64 { return c.BytesRecv }},
		{"pkts_sent", func() int64 { return c.PktsSent }},
		{"pkts_recv", func() int64 { return c.PktsRecv }},
		{"acks_sent", func() int64 { return c.AcksSent }},
		{"acks_recv", func() int64 { return c.AcksRecv }},
		{"rnr_nak_sent", func() int64 { return c.RNRNakSent }},
		{"rnr_nak_recv", func() int64 { return c.RNRNakRecv }},
		{"seq_nak_sent", func() int64 { return c.SeqNakSent }},
		{"seq_nak_recv", func() int64 { return c.SeqNakRecv }},
		{"retransmits", func() int64 { return c.Retransmits }},
		{"cnp_sent", func() int64 { return c.CNPSent }},
		{"cnp_recv", func() int64 { return c.CNPRecv }},
		{"remote_access_errs", func() int64 { return c.AccessErrors }},
		{"local_prot_errs", func() int64 { return c.LocalProtErrs }},
		{"corrupt_drops", func() int64 { return c.CorruptDrops }},
		{"qp_cache_misses", func() int64 { return c.QPCacheMisses }},
		{"qp_cache_hits", func() int64 { return c.QPCacheHits }},
		{"qps", func() int64 { return int64(n.NumQPs()) }},
		{"cmd_queue", func() int64 { return int64(n.CmdQueueLen()) }},
	} {
		reg.GaugeFunc(n.track+"."+g.name, g.fn)
	}
}

// Engine exposes the simulation engine (middleware timers ride on it).
func (n *NIC) Engine() *sim.Engine { return n.eng }

// Alive reports whether the NIC is operational.
func (n *NIC) Alive() bool { return n.alive }

// Crash silences the NIC: packets are dropped on the floor, exactly like a
// machine failure (§V-A: the peer side is never notified).
func (n *NIC) Crash() { n.alive = false }

// Revive restores a crashed NIC (host reboot).
func (n *NIC) Revive() { n.alive = true }

// Restart models the full machine reboot after a Crash: every QP flushes
// its outstanding work as errors, all registered memory is invalidated
// (a rebooted kernel holds no pins), and the adapter comes back alive.
// Software above must re-register memory and re-establish connections.
func (n *NIC) Restart() {
	for _, qp := range n.qps {
		qp.enterError(StatusFlushed)
		// A rebooted adapter starts with pristine QP contexts. Leaving
		// recycled QPs in Error would poison the middleware's QP cache:
		// the next Get() would hand out a QP that can never leave Error.
		n.modifyQPNow(qp, QPReset, 0, 0)
	}
	n.Mem.InvalidateAll()
	n.lastCNP = make(map[uint64]sim.Time)
	n.alive = true
}

// LineBps returns the host link rate.
func (n *NIC) LineBps() int64 { return n.host.LinkBps() }

// QP returns the queue pair with the given number, or nil.
func (n *NIC) QP(qpn uint32) *QP { return n.qps[qpn] }

// NumQPs reports live queue pairs.
func (n *NIC) NumQPs() int { return len(n.qps) }

// --- hardware command queue -------------------------------------------

// submitCmd serializes a hardware command; done fires when it completes.
func (n *NIC) submitCmd(cost sim.Duration, done func()) {
	n.cmdQueue = append(n.cmdQueue, hwCmd{cost: cost, fn: done})
	n.pumpCmds()
}

func (n *NIC) pumpCmds() {
	if n.cmdBusy || len(n.cmdQueue) == 0 {
		return
	}
	n.cmdBusy = true
	cmd := n.cmdQueue[0]
	n.cmdQueue = n.cmdQueue[1:]
	n.eng.After(cmd.cost, func() {
		n.cmdBusy = false
		cmd.fn()
		n.pumpCmds()
	})
}

// CmdQueueLen reports pending hardware commands (diagnostics).
func (n *NIC) CmdQueueLen() int {
	q := len(n.cmdQueue)
	if n.cmdBusy {
		q++
	}
	return q
}

// --- QP lifecycle -------------------------------------------------------

// QPCreateCost and per-transition modify cost reproduce the paper's
// establishment breakdown (3946 µs with creation, 2451 µs with the QP
// cache reusing an existing QP).
const (
	QPCreateCost = 1495 * sim.Microsecond
	QPModifyCost = 250 * sim.Microsecond
)

// CreateQP allocates a QP through the hardware command queue.
func (n *NIC) CreateQP(sqCap, rqCap int, sendCQ, recvCQ *CQ, srq *SRQ, done func(*QP)) {
	n.submitCmd(QPCreateCost, func() {
		qp := n.allocQP(sqCap, rqCap, sendCQ, recvCQ, srq)
		done(qp)
	})
}

// allocQP builds the QP synchronously (used by CreateQP and by tests that
// don't model command latency).
func (n *NIC) allocQP(sqCap, rqCap int, sendCQ, recvCQ *CQ, srq *SRQ) *QP {
	qp := &QP{
		QPN:       n.nextQPN,
		nic:       n,
		State:     QPReset,
		SQCap:     sqCap,
		RQCap:     rqCap,
		SendCQ:    sendCQ,
		RecvCQ:    recvCQ,
		srq:       srq,
		CreatedAt: n.eng.Now(),
	}
	qp.rtoFn = qp.onRTO
	qp.ackFn = qp.sendAckNow
	qp.cqeDoneFn = qp.drainSendOK
	n.nextQPN++
	n.qps[qp.QPN] = qp
	return qp
}

// AllocQPNow is the zero-latency variant for setup code and tests.
func (n *NIC) AllocQPNow(sqCap, rqCap int, sendCQ, recvCQ *CQ, srq *SRQ) *QP {
	return n.allocQP(sqCap, rqCap, sendCQ, recvCQ, srq)
}

// ModifyQP advances the state machine through the hardware command queue.
// Transitions must follow RESET→INIT→RTR→RTS; RTR wires the remote peer.
func (n *NIC) ModifyQP(qp *QP, to QPState, remote fabric.NodeID, remoteQPN uint32, done func(error)) {
	n.submitCmd(QPModifyCost, func() {
		done(n.modifyQPNow(qp, to, remote, remoteQPN))
	})
}

// modifyQPNow applies the transition immediately. Legal transitions are
// RESET→INIT→RTR→RTS plus any-state→RESET (the QP-cache recycling path).
func (n *NIC) modifyQPNow(qp *QP, to QPState, remote fabric.NodeID, remoteQPN uint32) error {
	switch to {
	case QPReset:
		// Reset clears all transient state; the QP cache uses this to
		// recycle QPs without paying creation cost again.
		n.dropJobsFor(qp)
		n.eng.Cancel(qp.rtoEvent)
		n.eng.Cancel(qp.ackTimer)
		for id, st := range qp.pendingReads {
			delete(qp.pendingReads, id)
			n.pool.putReadState(st)
		}
		if qp.assemble != nil {
			n.pool.putAsm(qp.assemble)
		}
		rtoFn, ackFn, drainFn := qp.rtoFn, qp.ackFn, qp.cqeDoneFn
		cqeDone, cqeHead := qp.cqeDone, qp.cqeHead
		*qp = QP{QPN: qp.QPN, nic: n, State: QPReset, SQCap: qp.SQCap, RQCap: qp.RQCap,
			SendCQ: qp.SendCQ, RecvCQ: qp.RecvCQ, srq: qp.srq, CreatedAt: qp.CreatedAt}
		// The cached closures survive recycling; the CQE FIFO must too,
		// because drains already scheduled still index into it (exactly
		// the lifetime per-WR closures used to have).
		qp.rtoFn, qp.ackFn, qp.cqeDoneFn = rtoFn, ackFn, drainFn
		qp.cqeDone, qp.cqeHead = cqeDone, cqeHead
	case QPInit:
		if qp.State != QPReset {
			return fmt.Errorf("%w: %v → INIT", ErrQPState, qp.State)
		}
		qp.State = QPInit
	case QPRTR:
		if qp.State != QPInit {
			return fmt.Errorf("%w: %v → RTR", ErrQPState, qp.State)
		}
		qp.RemoteNode = remote
		qp.RemoteQPN = remoteQPN
		qp.flowBase = uint64(n.Node)<<40 ^ uint64(remote)<<20 ^ uint64(qp.QPN)
		qp.flowLabel = 0
		qp.flowHash = qp.flowBase
		qp.rate = newDCQCN(&n.Cfg.DCQCN, n.eng, n.LineBps(), n, qp.QPN)
		qp.State = QPRTR
	case QPRTS:
		if qp.State != QPRTR {
			return fmt.Errorf("%w: %v → RTS", ErrQPState, qp.State)
		}
		qp.State = QPRTS
	default:
		return fmt.Errorf("%w: cannot modify to %v", ErrQPState, to)
	}
	n.tel.Flight.Record(n.eng.Now(), telemetry.CatQPState, int32(n.Node), qp.QPN, int64(to), 0)
	n.tel.Trace.Instant("qp.state", n.track, n.eng.Now(), int64(to))
	return nil
}

// ModifyQPNow is the zero-latency variant for setup code and tests.
func (n *NIC) ModifyQPNow(qp *QP, to QPState, remote fabric.NodeID, remoteQPN uint32) error {
	return n.modifyQPNow(qp, to, remote, remoteQPN)
}

// ModifyFlowLabel rewrites a connected QP's flow label — the RoCEv2
// UDP-source-port rotation trick: the connection identity is untouched,
// but every subsequent packet carries a different ECMP flow key, so the
// fabric's deterministic per-flow hash steers the flow onto a different
// equal-cost path. A plain attribute write on the driver fast path, not a
// serialized hardware command: in-flight packets keep the old key and
// go-back-N absorbs any reordering across the switch.
func (n *NIC) ModifyFlowLabel(qpn uint32, label uint64) error {
	qp := n.qps[qpn]
	if qp == nil {
		return fmt.Errorf("rnic: ModifyFlowLabel: no QP %d", qpn)
	}
	if qp.State != QPRTR && qp.State != QPRTS {
		return fmt.Errorf("%w: %v (flow label needs RTR/RTS)", ErrQPState, qp.State)
	}
	qp.flowLabel = label
	if label == 0 {
		qp.flowHash = qp.flowBase
		return nil
	}
	qp.flowHash = qp.flowBase ^ (label*0x9e3779b97f4a7c15 | 1)
	return nil
}

// DestroyQP releases the QP entirely.
func (n *NIC) DestroyQP(qp *QP) {
	qp.enterError(StatusFlushed)
	delete(n.qps, qp.QPN)
}

// ConnectLoopback is a test/bench helper: builds a connected QP pair
// between two NICs with zero setup latency.
func ConnectLoopback(a, b *NIC, depth int) (*QP, *QP) {
	qa := a.AllocQPNow(depth, depth, NewCQ(depth*2), NewCQ(depth*2), nil)
	qb := b.AllocQPNow(depth, depth, NewCQ(depth*2), NewCQ(depth*2), nil)
	for _, step := range []QPState{QPInit, QPRTR, QPRTS} {
		if err := a.ModifyQPNow(qa, step, b.Node, qb.QPN); err != nil {
			panic(err)
		}
		if err := b.ModifyQPNow(qb, step, a.Node, qa.QPN); err != nil {
			panic(err)
		}
	}
	return qa, qb
}

// Package rnic models an RDMA-capable NIC (RNIC) faithfully enough to
// reproduce the protocol-visible behaviours the X-RDMA paper builds on:
// queue pairs with the RC state machine, MTU segmentation, hardware
// acks with go-back-N retransmission, RNR NAKs, memory regions with rkey
// protection, a DCQCN rate limiter per QP, a QP-context SRAM cache, and a
// transmit engine that processes work requests one at a time — the
// head-of-line blocking that motivates X-RDMA's fragmentation.
package rnic

import (
	"errors"
	"fmt"
	"sort"

	"xrdma/internal/sim"
)

// RegMode selects how an MR's backing pages are organised. The paper's
// §VII-F compares non-continuous, physically continuous, and hugepage
// registrations.
type RegMode uint8

const (
	// RegNonContinuous is ordinary anonymous pages (Alibaba's choice).
	RegNonContinuous RegMode = iota
	// RegContinuous is physically continuous memory: slightly faster
	// address translation, but allocation is expensive and fragments.
	RegContinuous
	// RegHugePage uses 2 MB pages: fewer translations, middling cost.
	RegHugePage
)

func (m RegMode) String() string {
	switch m {
	case RegContinuous:
		return "continuous"
	case RegHugePage:
		return "hugepage"
	default:
		return "non-continuous"
	}
}

// MR is a registered memory region. Buf is real storage so tests can
// verify end-to-end data integrity; Base is the region's virtual address
// in the node's flat address space.
type MR struct {
	Base uint64
	Len  int
	RKey uint32
	LKey uint32
	Mode RegMode
	Buf  []byte

	mem *Memory
}

// Contains reports whether [addr, addr+n) falls inside the region.
func (mr *MR) Contains(addr uint64, n int) bool {
	return addr >= mr.Base && addr+uint64(n) <= mr.Base+uint64(mr.Len)
}

// Slice returns the backing bytes for [addr, addr+n); the range must be
// inside the region.
func (mr *MR) Slice(addr uint64, n int) []byte {
	off := addr - mr.Base
	return mr.Buf[off : off+uint64(n)]
}

// Memory is one node's registered-memory registry plus a virtual address
// allocator. Address space is never reused, so use-after-deregister is
// always caught.
type Memory struct {
	nextAddr uint64
	nextKey  uint32
	byKey    map[uint32]*MR
	sorted   []*MR // by Base, for address lookups

	// RegisteredBytes tracks current total registered memory — the
	// resource-footprint metric of §III Issue 1.
	RegisteredBytes int64
	// PeakRegisteredBytes is the high-water mark.
	PeakRegisteredBytes int64
	// Registrations counts ibv_reg_mr-equivalent calls.
	Registrations int64
}

// NewMemory returns an empty registry. The address space deliberately
// starts high (near "stack space", §VI-C memory-cache isolation).
func NewMemory() *Memory {
	return &Memory{nextAddr: 0x7f00_0000_0000, nextKey: 1, byKey: make(map[uint32]*MR)}
}

// ErrMRAccess is returned for rkey mismatches or out-of-bounds remote
// access; on the wire it becomes a remote-access-error NAK that breaks
// the QP.
var ErrMRAccess = errors.New("rnic: remote access violation")

// Register pins size bytes and returns the MR. Registration cost is a
// driver-time property; callers that care (the memory cache) charge
// RegCost through the simulation clock.
func (m *Memory) Register(size int, mode RegMode) *MR {
	if size < 0 {
		panic("rnic: negative MR size")
	}
	mr := &MR{
		Base: m.nextAddr,
		Len:  size,
		RKey: m.nextKey,
		LKey: m.nextKey,
		Mode: mode,
		Buf:  make([]byte, size),
		mem:  m,
	}
	// Guard gap between regions so off-by-one overruns never land in a
	// neighbouring MR.
	m.nextAddr += uint64(size) + 4096
	m.nextKey++
	m.byKey[mr.RKey] = mr
	idx := sort.Search(len(m.sorted), func(i int) bool { return m.sorted[i].Base > mr.Base })
	m.sorted = append(m.sorted, nil)
	copy(m.sorted[idx+1:], m.sorted[idx:])
	m.sorted[idx] = mr
	m.Registrations++
	m.RegisteredBytes += int64(size)
	if m.RegisteredBytes > m.PeakRegisteredBytes {
		m.PeakRegisteredBytes = m.RegisteredBytes
	}
	return mr
}

// Deregister removes the MR; later remote access to its range fails.
func (m *Memory) Deregister(mr *MR) {
	if _, ok := m.byKey[mr.RKey]; !ok {
		return
	}
	delete(m.byKey, mr.RKey)
	for i, r := range m.sorted {
		if r == mr {
			m.sorted = append(m.sorted[:i], m.sorted[i+1:]...)
			break
		}
	}
	m.RegisteredBytes -= int64(mr.Len)
}

// InvalidateAll drops every MR at once (node reboot): all later lookups
// fail with ErrMRAccess, exactly as if each region had been deregistered.
func (m *Memory) InvalidateAll() {
	for _, mr := range m.byKey {
		m.RegisteredBytes -= int64(mr.Len)
	}
	m.byKey = make(map[uint32]*MR)
	m.sorted = nil
}

// Lookup validates a remote access of n bytes at addr under rkey.
func (m *Memory) Lookup(rkey uint32, addr uint64, n int) (*MR, error) {
	mr, ok := m.byKey[rkey]
	if !ok {
		return nil, fmt.Errorf("%w: unknown rkey %d", ErrMRAccess, rkey)
	}
	if !mr.Contains(addr, n) {
		return nil, fmt.Errorf("%w: [%#x,+%d) outside MR [%#x,+%d)", ErrMRAccess, addr, n, mr.Base, mr.Len)
	}
	return mr, nil
}

// FindLocal resolves a local address to its MR (no key check: lkey use).
func (m *Memory) FindLocal(addr uint64, n int) (*MR, error) {
	i := sort.Search(len(m.sorted), func(i int) bool { return m.sorted[i].Base+uint64(m.sorted[i].Len) > addr })
	if i < len(m.sorted) && m.sorted[i].Contains(addr, n) {
		return m.sorted[i], nil
	}
	return nil, fmt.Errorf("%w: local [%#x,+%d) not registered", ErrMRAccess, addr, n)
}

// Regions reports the number of live MRs.
func (m *Memory) Regions() int { return len(m.byKey) }

// RegCost models the driver-side latency of registering size bytes with a
// given mode: page pinning scales with page count; continuous memory pays
// an allocation search; hugepages amortise pinning.
//
// LITE (SOSP'17) reports performance collapse past ~1000 small MRs, which
// motivated X-RDMA's 4 MB regions; the per-region fixed cost here encodes
// that trade-off.
func RegCost(size int, mode RegMode) sim.Duration {
	const fixed = 30 * sim.Microsecond // syscall + key setup
	pages := int64(size+4095) / 4096
	switch mode {
	case RegContinuous:
		// Compaction/search grows with size; cheap translation later.
		return fixed + sim.Duration(pages)*900*sim.Nanosecond
	case RegHugePage:
		huge := int64(size+(2<<20)-1) / (2 << 20)
		return fixed + sim.Duration(huge)*12*sim.Microsecond
	default:
		return fixed + sim.Duration(pages)*600*sim.Nanosecond
	}
}

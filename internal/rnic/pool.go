package rnic

import "xrdma/internal/sim"

// Per-engine free-lists for the RNIC fast path: protocol headers, transmit
// jobs and message-assembly state. Keying the pools to the simulation
// engine (via Engine.Aux) keeps every NIC on one engine sharing a pool —
// a header allocated by the sender's NIC is reclaimed by the receiver's —
// while parallel experiments on separate engines stay fully isolated with
// no global registry or locking.

type poolKey struct{}

type pools struct {
	hdrs  []*hdr
	jobs  []*txJob
	asms  []*assembly
	reads []*readState
}

// poolsFor returns the engine's pool set, creating it on first use.
func poolsFor(eng *sim.Engine) *pools {
	if v := eng.Aux(poolKey{}); v != nil {
		return v.(*pools)
	}
	pl := &pools{}
	eng.SetAux(poolKey{}, pl)
	return pl
}

// hdr returns a zeroed header.
func (pl *pools) hdr() *hdr {
	if k := len(pl.hdrs) - 1; k >= 0 {
		h := pl.hdrs[k]
		pl.hdrs[k] = nil
		pl.hdrs = pl.hdrs[:k]
		return h
	}
	return &hdr{}
}

// putHdr reclaims a header once its packet has been fully processed.
func (pl *pools) putHdr(h *hdr) {
	*h = hdr{}
	pl.hdrs = append(pl.hdrs, h)
}

// job returns a zeroed transmit job.
func (pl *pools) job() *txJob {
	if k := len(pl.jobs) - 1; k >= 0 {
		j := pl.jobs[k]
		pl.jobs[k] = nil
		pl.jobs = pl.jobs[:k]
		j.pooled = false
		return j
	}
	return &txJob{}
}

// putJob reclaims a job. Idempotent: the engine's ownership hand-offs
// (queue, current, in-flight closure) make double-release the dangerous
// failure mode, so a pooled job is never pooled twice.
func (pl *pools) putJob(j *txJob) {
	if j.pooled {
		return
	}
	*j = txJob{pooled: true}
	pl.jobs = append(pl.jobs, j)
}

// asm returns a zeroed assembly.
func (pl *pools) asm() *assembly {
	if k := len(pl.asms) - 1; k >= 0 {
		a := pl.asms[k]
		pl.asms[k] = nil
		pl.asms = pl.asms[:k]
		return a
	}
	return &assembly{}
}

// putAsm reclaims assembly state after the message is delivered. The
// gathered data slice has moved into the receive CQE by then; zeroing the
// struct only drops this reference, not the buffer.
func (pl *pools) putAsm(a *assembly) {
	*a = assembly{}
	pl.asms = append(pl.asms, a)
}

// readState returns a zeroed requester-side READ cursor.
func (pl *pools) readState() *readState {
	if k := len(pl.reads) - 1; k >= 0 {
		rs := pl.reads[k]
		pl.reads[k] = nil
		pl.reads = pl.reads[:k]
		return rs
	}
	return &readState{}
}

// putReadState reclaims a READ cursor once its WR completed or flushed.
// Any gathered data has moved into the WR/CQE by then.
func (pl *pools) putReadState(rs *readState) {
	*rs = readState{}
	pl.reads = append(pl.reads, rs)
}

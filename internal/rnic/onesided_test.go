package rnic

import (
	"bytes"
	"testing"

	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// mkPattern fills a deterministic payload.
func mkPattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + 3)
	}
	return b
}

// TestReadRecoversFromResponseLoss drops a middle read-response segment:
// the requester's PSN cursor stalls, the ONE shared RTO fires, go-back-N
// re-emits the request, the responder re-services it idempotently, and
// the duplicate leading segments are discarded by the cursor. There is no
// read-specific timer or retry plane — the recovery must show up in the
// same Retransmits counter the two-sided path uses.
func TestReadRecoversFromResponseLoss(t *testing.T) {
	r := newRig(t, DefaultConfig())
	mr := r.b.Mem.Register(64<<10, RegNonContinuous)
	want := mkPattern(10000) // 3 segments at MTU 4096
	copy(mr.Slice(mr.Base, len(want)), want)
	dropped := false
	r.b.FaultHook = func(p *fabric.Packet) (bool, sim.Duration) {
		h, ok := p.Payload.(*hdr)
		if ok && h.Op == opReadResp && h.Offset == 4096 && !dropped {
			dropped = true
			return true, 0
		}
		return false, 0
	}
	r.qa.PostSend(&SendWR{ID: 21, Op: OpRead, Len: len(want), RAddr: mr.Base, RKey: mr.RKey})
	r.eng.Run()
	if !dropped {
		t.Fatal("fault hook never dropped a response segment")
	}
	sc := r.qa.SendCQ.Poll(2)
	if len(sc) != 1 || sc[0].Status != StatusOK {
		t.Fatalf("read completion after response loss: %+v", sc)
	}
	if !bytes.Equal(sc[0].Data, want) {
		t.Fatal("read data corrupted by retransmit (duplicate segment double-applied?)")
	}
	if r.a.Counters.Retransmits == 0 {
		t.Fatal("recovery did not go through the shared go-back-N RTO")
	}
	if r.qa.State != QPRTS {
		t.Fatalf("QP state = %v after recovery, want RTS", r.qa.State)
	}
	if len(r.qa.pendingReads) != 0 || len(r.qa.unacked) != 0 {
		t.Fatalf("leaked read state: pendingReads=%d unacked=%d",
			len(r.qa.pendingReads), len(r.qa.unacked))
	}
}

// TestReadRecoversFromRequestLoss drops the READ request packet itself.
func TestReadRecoversFromRequestLoss(t *testing.T) {
	r := newRig(t, DefaultConfig())
	mr := r.b.Mem.Register(8192, RegNonContinuous)
	want := mkPattern(5000)
	copy(mr.Slice(mr.Base, len(want)), want)
	dropped := false
	r.a.FaultHook = func(p *fabric.Packet) (bool, sim.Duration) {
		h, ok := p.Payload.(*hdr)
		if ok && h.Op == OpRead && !dropped {
			dropped = true
			return true, 0
		}
		return false, 0
	}
	r.qa.PostSend(&SendWR{ID: 22, Op: OpRead, Len: len(want), RAddr: mr.Base, RKey: mr.RKey})
	r.eng.Run()
	sc := r.qa.SendCQ.Poll(2)
	if len(sc) != 1 || sc[0].Status != StatusOK || !bytes.Equal(sc[0].Data, want) {
		t.Fatalf("read lost after request drop: %+v", sc)
	}
	if r.a.Counters.Retransmits == 0 {
		t.Fatal("request loss must be recovered by the shared RTO")
	}
}

// TestReadInterleavesWithSends posts SEND, READ, SEND on one QP: the READ
// shares the PSN stream, a later SEND's cumulative ack must walk over the
// still-pending READ without completing it, and all three complete in
// posting order on the send CQ.
func TestReadInterleavesWithSends(t *testing.T) {
	r := newRig(t, DefaultConfig())
	postRecvN(t, r.qb, 2, 4096)
	mr := r.b.Mem.Register(64<<10, RegNonContinuous)
	want := mkPattern(9000)
	copy(mr.Slice(mr.Base, len(want)), want)
	r.qa.PostSend(&SendWR{ID: 1, Op: OpSend, Len: 64})
	r.qa.PostSend(&SendWR{ID: 2, Op: OpRead, Len: len(want), RAddr: mr.Base, RKey: mr.RKey})
	r.qa.PostSend(&SendWR{ID: 3, Op: OpSend, Len: 64})
	r.eng.Run()
	sc := r.qa.SendCQ.Poll(4)
	if len(sc) != 3 {
		t.Fatalf("send CQEs = %d, want 3", len(sc))
	}
	for i, c := range sc {
		if c.Status != StatusOK {
			t.Fatalf("CQE %d: %+v", i, c)
		}
	}
	var rd *CQE
	for i := range sc {
		if sc[i].Op == OpRead {
			rd = &sc[i]
		}
	}
	if rd == nil || !bytes.Equal(rd.Data, want) {
		t.Fatal("interleaved READ data wrong")
	}
	if got := r.qb.RecvCQ.Poll(4); len(got) != 2 {
		t.Fatalf("receiver saw %d messages, want 2 sends", len(got))
	}
	if len(r.qa.unacked) != 0 {
		t.Fatalf("unacked not drained: %d", len(r.qa.unacked))
	}
}

// TestReadAccessViolationSurfaces checks the remote-access NAK path end to
// end: error CQE + broken QP at the requester, counters on BOTH ends, and
// a flight-recorder event — never a silent drop.
func TestReadAccessViolationSurfaces(t *testing.T) {
	r := newRig(t, DefaultConfig())
	mr := r.b.Mem.Register(4096, RegNonContinuous)
	r.qa.PostSend(&SendWR{ID: 30, Op: OpRead, Len: 8192, RAddr: mr.Base, RKey: mr.RKey})
	r.eng.Run()
	sc := r.qa.SendCQ.Poll(1)
	if len(sc) != 1 || sc[0].Status != StatusRemoteAccessErr {
		t.Fatalf("expected remote access error, got %+v", sc)
	}
	if r.qa.State != QPError {
		t.Fatal("requester QP must break on access NAK")
	}
	if r.b.Counters.AccessErrors == 0 || r.qb.Counters.RemoteAccessErrs == 0 {
		t.Fatal("responder did not count the violation")
	}
	if r.qa.Counters.RemoteAccessErrs == 0 {
		t.Fatal("requester did not count the violation")
	}
	d := r.b.tel.Flight.ForceDump(r.eng.Now(), "test")
	found := false
	for _, e := range d.Events {
		if e.Cat == telemetry.CatRemoteAccess {
			found = true
		}
	}
	if !found {
		t.Fatal("no remote.access flight-recorder event")
	}
}

// TestZeroByteRead is the one-sided RTT probe: no rkey, no responder CPU,
// no responder CQEs.
func TestZeroByteRead(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.qa.PostSend(&SendWR{ID: 31, Op: OpRead, Len: 0})
	r.eng.Run()
	sc := r.qa.SendCQ.Poll(1)
	if len(sc) != 1 || sc[0].Status != StatusOK {
		t.Fatalf("zero-byte read: %+v", sc)
	}
	if r.qb.RecvCQ.Len() != 0 || r.qb.SendCQ.Len() != 0 {
		t.Fatal("zero-byte read touched responder CQs")
	}
	if r.b.Counters.AccessErrors != 0 {
		t.Fatal("zero-byte read must not need an rkey")
	}
}

// TestReadResponseECNTriggersCNP: response segments are data-plane
// traffic, so ECN marks on them must reach the responder's DCQCN limiter
// like any other flow.
func TestReadResponseECNTriggersCNP(t *testing.T) {
	r := newRig(t, DefaultConfig())
	mr := r.b.Mem.Register(128<<10, RegNonContinuous)
	marks := 0
	r.b.FaultHook = func(p *fabric.Packet) (bool, sim.Duration) {
		h, ok := p.Payload.(*hdr)
		if ok && h.Op == opReadResp {
			p.Marked = true // force an ECN mark on every response segment
			marks++
		}
		return false, 0
	}
	r.qa.PostSend(&SendWR{ID: 32, Op: OpRead, Len: 64 << 10, RAddr: mr.Base, RKey: mr.RKey})
	r.eng.Run()
	if marks == 0 {
		t.Fatal("hook never saw a response segment")
	}
	if r.a.Counters.CNPSent == 0 {
		t.Fatal("requester never notified the responder (CNP) for marked responses")
	}
	if r.b.Counters.CNPRecv == 0 {
		t.Fatal("responder never received the CNP")
	}
}

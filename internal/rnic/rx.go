package rnic

import (
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// HandlePacket is the fabric delivery entry point. Protocol processing
// (sequencing, acks, naks) is immediate; CQE visibility pays the
// completion + QP-cache costs.
func (n *NIC) HandlePacket(p *fabric.Packet) {
	h, ok := p.Payload.(*hdr)
	if !ok {
		return // foreign traffic (e.g. tcpnet) on a shared host
	}
	if !n.alive {
		// Crashed machine: packets vanish, no notification (§III). The
		// header still returns to the pool.
		n.pool.putHdr(h)
		return
	}
	if p.Corrupt {
		// Failed FCS check: the frame never reaches protocol processing.
		// The sender's RTO recovers it like any other loss. The drop is
		// also charged to the destination QP so per-flow consumers (the
		// xrdma path doctor) never blame one path's damage on another.
		n.Counters.CorruptDrops++
		if qp := n.qps[h.DstQPN]; qp != nil {
			qp.Counters.CorruptDrops++
		}
		n.tel.Flight.Record(n.eng.Now(), telemetry.CatCorruptDrop, int32(n.Node), h.DstQPN, int64(p.Size), 0)
		n.pool.putHdr(h)
		return
	}
	n.Counters.PktsRecv++
	switch h.Op {
	case opAck:
		n.Counters.AcksRecv++
		if qp := n.qps[h.DstQPN]; qp != nil {
			qp.handleAck(h.AckPSN)
		}
	case opNak:
		if qp := n.qps[h.DstQPN]; qp != nil {
			qp.handleNak(h)
		}
	case opCNP:
		n.Counters.CNPRecv++
		if qp := n.qps[h.DstQPN]; qp != nil {
			qp.Counters.CNPRecv++
			qp.rate.onCNP()
		}
	case opReadResp:
		if qp := n.qps[h.DstQPN]; qp != nil {
			qp.handleReadResp(h)
		}
	case OpRead:
		n.handleReadReq(p, h)
	default:
		n.handleData(p, h)
	}
	// End of life for the header: every handler above copies what it
	// keeps (payload bytes move into assembly or read state).
	n.pool.putHdr(h)
}

// maybeCNP implements the DCQCN notification point: an ECN-marked data
// packet triggers at most one CNP per flow per CNPInterval back to the
// sender.
func (n *NIC) maybeCNP(p *fabric.Packet, h *hdr) {
	if !p.Marked || !n.Cfg.DCQCN.Enabled {
		return
	}
	key := uint64(p.Src)<<32 | uint64(h.SrcQPN)
	now := n.eng.Now()
	if last, ok := n.lastCNP[key]; ok && now.Sub(last) < n.Cfg.CNPInterval {
		return
	}
	n.lastCNP[key] = now
	n.Counters.CNPSent++
	n.sendCtrl(p.Src, hdr{Op: opCNP, DstQPN: h.SrcQPN, SrcQPN: h.DstQPN})
}

// handleReadReq services an inbound RDMA READ without any CPU
// involvement: validate the rkey and stream the response through the
// transmit engine.
func (n *NIC) handleReadReq(p *fabric.Packet, h *hdr) {
	qp := n.qps[h.DstQPN]
	if qp == nil || (qp.State != QPRTR && qp.State != QPRTS) {
		return
	}
	qp.LastComm = n.eng.Now()
	n.maybeCNP(p, h)
	mr, err := n.Mem.Lookup(h.RKey, h.RAddr, h.MsgLen)
	if err != nil {
		n.Counters.AccessErrors++
		n.sendCtrl(p.Src, hdr{Op: opNak, DstQPN: h.SrcQPN, Nak: nakAccess})
		qp.enterError(StatusRemoteAccessErr)
		return
	}
	var data []byte
	if h.MsgLen > 0 {
		data = make([]byte, h.MsgLen)
		copy(data, mr.Slice(h.RAddr, h.MsgLen))
	}
	// The packet and header are recycled when this handler returns; copy
	// everything the deferred response needs.
	src, srcQPN, readID, msgLen := p.Src, h.SrcQPN, h.ReadID, h.MsgLen
	n.eng.After(n.Cfg.RxProcess+n.touchQP(qp.QPN), func() {
		j := n.pool.job()
		j.qp, j.isResp = qp, true
		j.respTo, j.respQPN = src, srcQPN
		j.readID, j.respData, j.respLen = readID, data, msgLen
		n.enqueueJob(j)
	})
}

// handleReadResp accumulates response packets at the requester and
// completes the READ WR when the last arrives.
func (qp *QP) handleReadResp(h *hdr) {
	n := qp.nic
	st, ok := qp.pendingReads[h.ReadID]
	if !ok {
		return // stale retry duplicate
	}
	if h.First {
		st.got = 0
		if h.MsgLen > 0 && h.Data != nil {
			st.data = make([]byte, h.MsgLen)
		}
	}
	seg := len(h.Data)
	if seg == 0 && h.MsgLen > 0 {
		// size-only simulation
		seg = h.MsgLen - st.got
		if seg > n.Cfg.MTU {
			seg = n.Cfg.MTU
		}
	}
	if st.data != nil && h.Data != nil {
		copy(st.data[h.Offset:], h.Data)
	}
	st.got += seg
	if !h.Last {
		return
	}
	delete(qp.pendingReads, h.ReadID)
	n.eng.Cancel(st.timer)
	wr := st.wr
	qp.Counters.BytesRecv += int64(wr.Len)
	// Scatter into the local buffer when it is registered memory.
	if st.data != nil && wr.Local != 0 {
		if mr, err := n.Mem.FindLocal(wr.Local, wr.Len); err == nil {
			copy(mr.Slice(wr.Local, wr.Len), st.data)
		}
	}
	data := st.data
	qp.pushSendCQE(n.Cfg.CompletionCost, func() {
		if wr.Unsignaled {
			return
		}
		qp.SendCQ.push(CQE{WRID: wr.ID, QPN: qp.QPN, Op: OpRead, Status: StatusOK, Len: wr.Len, Data: data})
	})
}

// handleData sequences SEND/WRITE packets: in-order acceptance, duplicate
// re-ack, gap NAK, RNR NAK when a SEND finds no receive buffer.
func (n *NIC) handleData(p *fabric.Packet, h *hdr) {
	qp := n.qps[h.DstQPN]
	if qp == nil || (qp.State != QPRTR && qp.State != QPRTS) {
		return
	}
	qp.LastComm = n.eng.Now()
	n.maybeCNP(p, h)

	switch {
	case h.PSN < qp.expected:
		// Retransmission overlap: discard, refresh the ack.
		qp.sendAckNow()
		return
	case h.PSN > qp.expected:
		// Loss gap: one NAK per gap.
		if !qp.nakValid || qp.nakedAt != qp.expected {
			qp.nakValid = true
			qp.nakedAt = qp.expected
			n.Counters.SeqNakSent++
			n.sendCtrl(p.Src, hdr{Op: opNak, DstQPN: h.SrcQPN, Nak: nakSeqErr, AckPSN: qp.expected})
		}
		return
	}

	// In order. First packet of a receive-consuming message must claim a
	// receive WQE; failure is the RNR the paper's seq-ack window kills.
	if h.First && h.Op.IsRecvConsuming() {
		wr, ok := qp.takeRecv()
		if !ok {
			n.Counters.RNRNakSent++
			qp.Counters.RNRNakSent++
			n.tel.Flight.Record(n.eng.Now(), telemetry.CatRNRNakSent, int32(n.Node), qp.QPN, int64(qp.expected), 0)
			n.tel.Trace.Instant("rnr.nak.sent", n.track, n.eng.Now(), int64(qp.QPN))
			n.sendCtrl(p.Src, hdr{Op: opNak, DstQPN: h.SrcQPN, Nak: nakRNR, AckPSN: qp.expected})
			return
		}
		if (h.Op == OpSend || h.Op == OpSendImm) && h.MsgLen > wr.Len {
			n.Counters.AccessErrors++
			n.sendCtrl(p.Src, hdr{Op: opNak, DstQPN: h.SrcQPN, Nak: nakAccess})
			qp.enterError(StatusRemoteAccessErr)
			return
		}
		a := n.pool.asm()
		a.op, a.msgLen, a.recvWR, a.hasWR = h.Op, h.MsgLen, wr, true
		if h.Blame != nil {
			// Trace bit: reassembly residency starts when the first
			// fragment is accepted (RNR-rejected attempts are charged to
			// the sender's recovery stage, not to reassembly).
			if h.Blame.FirstAt == 0 {
				h.Blame.FirstAt = n.eng.Now()
			}
			a.blame = h.Blame
		}
		qp.assemble = a
	}
	if h.First && (h.Op == OpWrite || h.Op == OpWriteImm) {
		var mr *MR
		if h.MsgLen > 0 {
			var err error
			mr, err = n.Mem.Lookup(h.RKey, h.RAddr, h.MsgLen)
			if err != nil {
				n.Counters.AccessErrors++
				n.sendCtrl(p.Src, hdr{Op: opNak, DstQPN: h.SrcQPN, Nak: nakAccess})
				qp.enterError(StatusRemoteAccessErr)
				return
			}
		}
		if h.Op == OpWriteImm {
			if qp.assemble == nil {
				// WriteImm consumes a WQE but we tolerate arrival
				// before the First branch above only for sends.
			}
		}
		if qp.assemble == nil {
			a := n.pool.asm()
			a.op, a.msgLen = h.Op, h.MsgLen
			qp.assemble = a
		}
		qp.assemble.mr = mr
		qp.assemble.raddr = h.RAddr
	}

	qp.expected++
	qp.nakValid = false

	a := qp.assemble
	if a == nil {
		// Mid-message packet after QP reset: drop payload, still ack.
		qp.scheduleAck(h.Last)
		return
	}
	// Progress accounting uses the wire segment length; carried bytes may
	// be fewer (size-only payloads behind a real header).
	seg := h.MsgLen - a.got
	if seg > n.Cfg.MTU {
		seg = n.Cfg.MTU
	}
	if seg < 0 {
		seg = 0
	}
	if h.Data != nil {
		switch a.op {
		case OpWrite, OpWriteImm:
			if a.mr != nil {
				copy(a.mr.Slice(a.raddr+uint64(h.Offset), len(h.Data)), h.Data)
			}
		default:
			if a.data == nil {
				a.data = make([]byte, a.msgLen)
			}
			copy(a.data[h.Offset:], h.Data)
		}
	}
	a.got += seg

	if h.Last {
		qp.assemble = nil
		n.Counters.MsgsRecv++
		n.Counters.BytesRecv += int64(a.msgLen)
		qp.Counters.MsgsRecv++
		qp.Counters.BytesRecv += int64(a.msgLen)
		n.deliver(qp, a, h)
		n.pool.putAsm(a) // deliver copied the CQE (incl. the data slice)
	}
	qp.scheduleAck(h.Last)
}

// deliver raises the receive-side completion (if the op consumes one).
func (n *NIC) deliver(qp *QP, a *assembly, h *hdr) {
	hasImm := h.Op == OpSendImm || h.Op == OpWriteImm
	if !a.hasWR && !hasImm {
		return // plain WRITE: invisible to the application, by design
	}
	cqe := CQE{
		QPN: qp.QPN, Op: h.Op, Status: StatusOK, Len: a.msgLen,
		Imm: h.Imm, HasImm: hasImm,
	}
	cqe.Blame = a.blame
	if a.hasWR {
		cqe.WRID = a.recvWR.ID
		cqe.Addr = a.recvWR.Addr
		if a.data != nil {
			if mr, err := n.Mem.FindLocal(a.recvWR.Addr, a.msgLen); err == nil {
				copy(mr.Slice(a.recvWR.Addr, a.msgLen), a.data)
			}
			cqe.Data = a.data
		}
	} else if a.op == OpWriteImm {
		cqe.Addr = a.raddr
	}
	cost := n.Cfg.CompletionCost + n.touchQP(qp.QPN)
	qp.pushRecvCQE(cost, func() { qp.RecvCQ.push(cqe) })
}

// --- ack generation -------------------------------------------------------

// scheduleAck coalesces acknowledgements: immediate on message boundaries
// every AckEvery packets, otherwise a delayed ack timer.
func (qp *QP) scheduleAck(boundary bool) {
	qp.pktsSinceAck++
	if (boundary && qp.pktsSinceAck >= qp.nic.Cfg.AckEvery) || qp.pktsSinceAck >= qp.nic.Cfg.AckEvery*4 {
		qp.sendAckNow()
		return
	}
	if !qp.ackTimer.Pending() {
		qp.ackTimer = qp.nic.eng.After(qp.nic.Cfg.AckDelay, qp.ackFn)
	}
}

func (qp *QP) sendAckNow() {
	n := qp.nic
	n.eng.Cancel(qp.ackTimer)
	qp.ackTimer = sim.Event{}
	qp.pktsSinceAck = 0
	n.Counters.AcksSent++
	n.sendCtrl(qp.RemoteNode, hdr{Op: opAck, DstQPN: qp.RemoteQPN, SrcQPN: qp.QPN, AckPSN: qp.expected})
}

// --- ack / nak handling at the requester -----------------------------------

// handleAck retires unacked WRs whose PSN range is fully covered by the
// cumulative ack. Any forward movement of the cumulative ack counts as
// progress and resets the retry budget — a multi-megabyte WR paced down by
// DCQCN must not trip the RTO while it is advancing.
func (qp *QP) handleAck(ackPSN uint32) {
	n := qp.nic
	progressed := false
	if ackPSN > qp.lastSeenAck {
		qp.lastSeenAck = ackPSN
		progressed = true
	}
	for len(qp.unacked) > 0 {
		wr := qp.unacked[0]
		if wr.lastPSN >= ackPSN {
			break
		}
		// Compact in place rather than re-slicing: [1:] would walk the
		// backing array forward and force the next append to grow it.
		copy(qp.unacked, qp.unacked[1:])
		qp.unacked = qp.unacked[:len(qp.unacked)-1]
		qp.cqeDone = append(qp.cqeDone, wr)
		qp.pushSendCQE(n.Cfg.CompletionCost, qp.cqeDoneFn)
	}
	if progressed {
		qp.retries = 0
		qp.rnrRetries = 0
		qp.resetRTO()
	}
}

func (qp *QP) handleNak(h *hdr) {
	n := qp.nic
	switch h.Nak {
	case nakAccess:
		n.Counters.AccessErrors++
		qp.enterError(StatusRemoteAccessErr)
	case nakRNR:
		n.Counters.RNRNakRecv++
		qp.Counters.RNRNakRecv++
		n.tel.Flight.Record(n.eng.Now(), telemetry.CatRNRNakRecv, int32(n.Node), qp.QPN, int64(qp.rnrRetries), 0)
		n.tel.Trace.Instant("rnr.nak.recv", n.track, n.eng.Now(), int64(qp.QPN))
		qp.handleAck(h.AckPSN)
		qp.rnrRetries++
		if qp.rnrRetries > n.Cfg.RNRRetryLimit {
			qp.enterError(StatusRNRRetryExceeded)
			return
		}
		// The backoff window is the recovery residency this RNR costs.
		// A NAK burst (one per rejected packet) extends the window rather
		// than stacking it, so only the wall-clock extension is charged.
		now := n.eng.Now()
		until := now.Add(n.Cfg.RNRTimer)
		add := n.Cfg.RNRTimer
		if qp.rnrBackoffUntil > now {
			add = until.Sub(qp.rnrBackoffUntil)
		}
		if add > 0 {
			qp.Counters.RNRRecoveryNs += int64(add)
		}
		qp.rnrBackoffUntil = until
		n.eng.At(qp.rnrBackoffUntil, func() {
			if qp.State == QPRTS {
				qp.retransmitUnacked()
			}
		})
	case nakSeqErr:
		n.Counters.SeqNakRecv++
		qp.Counters.SeqNakRecv++
		qp.handleAck(h.AckPSN)
		qp.retransmitUnacked()
	}
}

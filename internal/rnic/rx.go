package rnic

import (
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// HandlePacket is the fabric delivery entry point. Protocol processing
// (sequencing, acks, naks) is immediate; CQE visibility pays the
// completion + QP-cache costs.
func (n *NIC) HandlePacket(p *fabric.Packet) {
	h, ok := p.Payload.(*hdr)
	if !ok {
		return // foreign traffic (e.g. tcpnet) on a shared host
	}
	if !n.alive {
		// Crashed machine: packets vanish, no notification (§III). The
		// header still returns to the pool.
		n.pool.putHdr(h)
		return
	}
	if p.Corrupt {
		// Failed FCS check: the frame never reaches protocol processing.
		// The sender's RTO recovers it like any other loss. The drop is
		// also charged to the destination QP so per-flow consumers (the
		// xrdma path doctor) never blame one path's damage on another.
		n.Counters.CorruptDrops++
		if qp := n.qps[h.DstQPN]; qp != nil {
			qp.Counters.CorruptDrops++
		}
		n.tel.Flight.Record(n.eng.Now(), telemetry.CatCorruptDrop, int32(n.Node), h.DstQPN, int64(p.Size), 0)
		n.pool.putHdr(h)
		return
	}
	n.Counters.PktsRecv++
	switch h.Op {
	case opAck:
		n.Counters.AcksRecv++
		if qp := n.qps[h.DstQPN]; qp != nil {
			qp.handleAck(h.AckPSN)
		}
	case opNak:
		if qp := n.qps[h.DstQPN]; qp != nil {
			qp.handleNak(h)
		}
	case opCNP:
		n.Counters.CNPRecv++
		if qp := n.qps[h.DstQPN]; qp != nil {
			qp.Counters.CNPRecv++
			qp.rate.onCNP()
		}
	case opReadResp:
		if qp := n.qps[h.DstQPN]; qp != nil {
			// Response segments are data packets: an ECN mark here must
			// reach the responder's rate limiter like any other flow.
			n.maybeCNP(p, h)
			qp.handleReadResp(h)
		}
	case OpRead:
		n.handleReadReq(p, h)
	default:
		n.handleData(p, h)
	}
	// End of life for the header: every handler above copies what it
	// keeps (payload bytes move into assembly or read state).
	n.pool.putHdr(h)
}

// maybeCNP implements the DCQCN notification point: an ECN-marked data
// packet triggers at most one CNP per flow per CNPInterval back to the
// sender.
func (n *NIC) maybeCNP(p *fabric.Packet, h *hdr) {
	if !p.Marked || !n.Cfg.DCQCN.Enabled {
		return
	}
	key := uint64(p.Src)<<32 | uint64(h.SrcQPN)
	now := n.eng.Now()
	if last, ok := n.lastCNP[key]; ok && now.Sub(last) < n.Cfg.CNPInterval {
		return
	}
	n.lastCNP[key] = now
	n.Counters.CNPSent++
	n.sendCtrl(p.Src, hdr{Op: opCNP, DstQPN: h.SrcQPN, SrcQPN: h.DstQPN})
}

// handleReadReq services an inbound RDMA READ without any CPU
// involvement: sequence the request in the same PSN stream as sends,
// validate the rkey and stream the response through the transmit engine.
// Servicing is stateless and idempotent — a retransmitted request (PSN
// below expected, go-back-N at the requester) re-streams the same PSN
// range from the values the packet itself carries.
func (n *NIC) handleReadReq(p *fabric.Packet, h *hdr) {
	qp := n.qps[h.DstQPN]
	if qp == nil || (qp.State != QPRTR && qp.State != QPRTS) {
		return
	}
	qp.LastComm = n.eng.Now()
	n.maybeCNP(p, h)
	segs := (h.MsgLen + n.Cfg.MTU - 1) / n.Cfg.MTU
	if segs == 0 {
		segs = 1
	}
	switch {
	case h.PSN == qp.expected:
		// Fresh request: the response stream consumes the requester's PSN
		// range, so the receive edge jumps past it — a later SEND's
		// cumulative ack covers the READ request too.
		qp.expected += uint32(segs)
		qp.nakValid = false
	case h.PSN < qp.expected:
		// Retransmitted request: re-service idempotently below.
	default:
		// Gap: something before the READ was lost; one NAK per gap.
		if !qp.nakValid || qp.nakedAt != qp.expected {
			qp.nakValid = true
			qp.nakedAt = qp.expected
			n.Counters.SeqNakSent++
			n.sendCtrl(p.Src, hdr{Op: opNak, DstQPN: h.SrcQPN, Nak: nakSeqErr, AckPSN: qp.expected})
		}
		return
	}
	var data []byte
	if h.MsgLen > 0 {
		// Zero-byte READs (RTT probes) need no rkey, like zero-byte writes.
		mr, err := n.Mem.Lookup(h.RKey, h.RAddr, h.MsgLen)
		if err != nil {
			n.remoteAccessViolation(p.Src, h.SrcQPN, qp)
			return
		}
		data = make([]byte, h.MsgLen)
		copy(data, mr.Slice(h.RAddr, h.MsgLen))
	}
	// The packet and header are recycled when this handler returns; copy
	// everything the deferred response needs into the job and let the
	// engine's ready-time gate charge the RxProcess delay (closure-free).
	j := n.pool.job()
	j.qp, j.isResp = qp, true
	j.respTo, j.respQPN = p.Src, h.SrcQPN
	j.readID, j.respData, j.respLen = h.ReadID, data, h.MsgLen
	j.respPSN = h.PSN
	j.readyAt = n.eng.Now().Add(n.Cfg.RxProcess + n.touchQP(qp.QPN))
	n.enqueueJob(j)
}

// remoteAccessViolation surfaces a responder-side rkey/bounds failure:
// per-QP and node counters, a flight-recorder event, an access NAK back
// to the requester, and the QP broken — never a silent drop.
func (n *NIC) remoteAccessViolation(src fabric.NodeID, srcQPN uint32, qp *QP) {
	n.Counters.AccessErrors++
	qp.Counters.RemoteAccessErrs++
	n.tel.Flight.Record(n.eng.Now(), telemetry.CatRemoteAccess, int32(n.Node), qp.QPN, int64(srcQPN), 0)
	n.tel.Trace.Instant("remote.access", n.track, n.eng.Now(), int64(qp.QPN))
	n.sendCtrl(src, hdr{Op: opNak, DstQPN: srcQPN, Nak: nakAccess})
	qp.enterError(StatusRemoteAccessErr)
}

// handleReadResp accepts response packets at the requester in PSN order
// and completes the READ WR when the last arrives. Response progress is
// ack progress: it resets the retry budget and restarts the one shared
// RTO, and duplicates from an idempotent re-service are discarded by the
// same PSN rule that rejects retransmission overlap on the data path.
func (qp *QP) handleReadResp(h *hdr) {
	n := qp.nic
	st, ok := qp.pendingReads[h.ReadID]
	if !ok {
		return // duplicate of an already-completed READ
	}
	if h.PSN != st.nextPSN {
		// Below: re-serviced segment already accepted — discard. Above: a
		// hole in the response stream — the go-back-N RTO re-requests.
		return
	}
	wr := st.wr
	if st.data == nil && h.MsgLen > 0 && h.Data != nil {
		st.data = make([]byte, h.MsgLen)
	}
	seg := len(h.Data)
	if seg == 0 && h.MsgLen > 0 {
		// size-only simulation
		seg = h.MsgLen - st.got
		if seg > n.Cfg.MTU {
			seg = n.Cfg.MTU
		}
	}
	if st.data != nil && h.Data != nil {
		copy(st.data[h.Offset:], h.Data)
	}
	st.got += seg
	st.nextPSN++
	qp.retries = 0
	qp.resetRTO()
	if !h.Last {
		return
	}
	delete(qp.pendingReads, h.ReadID)
	// The READ retires from the unacked list here — its response stream is
	// its acknowledgement (cumulative acks skip over READ WRs).
	for i, w := range qp.unacked {
		if w == wr {
			copy(qp.unacked[i:], qp.unacked[i+1:])
			qp.unacked = qp.unacked[:len(qp.unacked)-1]
			break
		}
	}
	qp.resetRTO()
	qp.Counters.BytesRecv += int64(wr.Len)
	// Scatter into the local buffer when it is registered memory. A local
	// address that resolves to no MR is counted, never silently dropped.
	if st.data != nil && wr.Local != 0 {
		if mr, err := n.Mem.FindLocal(wr.Local, wr.Len); err == nil {
			copy(mr.Slice(wr.Local, wr.Len), st.data)
		} else {
			n.Counters.LocalProtErrs++
			n.tel.Flight.Record(n.eng.Now(), telemetry.CatRemoteAccess, int32(n.Node), qp.QPN, int64(wr.ID), 1)
		}
	}
	// Park the payload on the WR and complete through the shared cqeDone
	// FIFO — the same closure-free completion path acked sends use.
	wr.Data = st.data
	n.pool.putReadState(st)
	qp.cqeDone = append(qp.cqeDone, wr)
	qp.pushSendCQE(n.Cfg.CompletionCost, qp.cqeDoneFn)
}

// handleData sequences SEND/WRITE packets: in-order acceptance, duplicate
// re-ack, gap NAK, RNR NAK when a SEND finds no receive buffer.
func (n *NIC) handleData(p *fabric.Packet, h *hdr) {
	qp := n.qps[h.DstQPN]
	if qp == nil || (qp.State != QPRTR && qp.State != QPRTS) {
		return
	}
	qp.LastComm = n.eng.Now()
	n.maybeCNP(p, h)

	switch {
	case h.PSN < qp.expected:
		// Retransmission overlap: discard, refresh the ack.
		qp.sendAckNow()
		return
	case h.PSN > qp.expected:
		// Loss gap: one NAK per gap.
		if !qp.nakValid || qp.nakedAt != qp.expected {
			qp.nakValid = true
			qp.nakedAt = qp.expected
			n.Counters.SeqNakSent++
			n.sendCtrl(p.Src, hdr{Op: opNak, DstQPN: h.SrcQPN, Nak: nakSeqErr, AckPSN: qp.expected})
		}
		return
	}

	// In order. First packet of a receive-consuming message must claim a
	// receive WQE; failure is the RNR the paper's seq-ack window kills.
	if h.First && h.Op.IsRecvConsuming() {
		wr, ok := qp.takeRecv()
		if !ok {
			n.Counters.RNRNakSent++
			qp.Counters.RNRNakSent++
			n.tel.Flight.Record(n.eng.Now(), telemetry.CatRNRNakSent, int32(n.Node), qp.QPN, int64(qp.expected), 0)
			n.tel.Trace.Instant("rnr.nak.sent", n.track, n.eng.Now(), int64(qp.QPN))
			n.sendCtrl(p.Src, hdr{Op: opNak, DstQPN: h.SrcQPN, Nak: nakRNR, AckPSN: qp.expected})
			return
		}
		if (h.Op == OpSend || h.Op == OpSendImm) && h.MsgLen > wr.Len {
			n.remoteAccessViolation(p.Src, h.SrcQPN, qp)
			return
		}
		a := n.pool.asm()
		a.op, a.msgLen, a.recvWR, a.hasWR = h.Op, h.MsgLen, wr, true
		if h.Blame != nil {
			// Trace bit: reassembly residency starts when the first
			// fragment is accepted (RNR-rejected attempts are charged to
			// the sender's recovery stage, not to reassembly).
			if h.Blame.FirstAt == 0 {
				h.Blame.FirstAt = n.eng.Now()
			}
			a.blame = h.Blame
		}
		qp.assemble = a
	}
	if h.First && (h.Op == OpWrite || h.Op == OpWriteImm) {
		var mr *MR
		if h.MsgLen > 0 {
			var err error
			mr, err = n.Mem.Lookup(h.RKey, h.RAddr, h.MsgLen)
			if err != nil {
				n.remoteAccessViolation(p.Src, h.SrcQPN, qp)
				return
			}
		}
		if h.Op == OpWriteImm {
			if qp.assemble == nil {
				// WriteImm consumes a WQE but we tolerate arrival
				// before the First branch above only for sends.
			}
		}
		if qp.assemble == nil {
			a := n.pool.asm()
			a.op, a.msgLen = h.Op, h.MsgLen
			qp.assemble = a
		}
		qp.assemble.mr = mr
		qp.assemble.raddr = h.RAddr
	}

	qp.expected++
	qp.nakValid = false

	a := qp.assemble
	if a == nil {
		// Mid-message packet after QP reset: drop payload, still ack.
		qp.scheduleAck(h.Last)
		return
	}
	// Progress accounting uses the wire segment length; carried bytes may
	// be fewer (size-only payloads behind a real header).
	seg := h.MsgLen - a.got
	if seg > n.Cfg.MTU {
		seg = n.Cfg.MTU
	}
	if seg < 0 {
		seg = 0
	}
	if h.Data != nil {
		switch a.op {
		case OpWrite, OpWriteImm:
			if a.mr != nil {
				copy(a.mr.Slice(a.raddr+uint64(h.Offset), len(h.Data)), h.Data)
			}
		default:
			if a.data == nil {
				a.data = make([]byte, a.msgLen)
			}
			copy(a.data[h.Offset:], h.Data)
		}
	}
	a.got += seg

	if h.Last {
		qp.assemble = nil
		n.Counters.MsgsRecv++
		n.Counters.BytesRecv += int64(a.msgLen)
		qp.Counters.MsgsRecv++
		qp.Counters.BytesRecv += int64(a.msgLen)
		n.deliver(qp, a, h)
		n.pool.putAsm(a) // deliver copied the CQE (incl. the data slice)
	}
	qp.scheduleAck(h.Last)
}

// deliver raises the receive-side completion (if the op consumes one).
func (n *NIC) deliver(qp *QP, a *assembly, h *hdr) {
	hasImm := h.Op == OpSendImm || h.Op == OpWriteImm
	if !a.hasWR && !hasImm {
		return // plain WRITE: invisible to the application, by design
	}
	cqe := CQE{
		QPN: qp.QPN, Op: h.Op, Status: StatusOK, Len: a.msgLen,
		Imm: h.Imm, HasImm: hasImm,
	}
	cqe.Blame = a.blame
	if a.hasWR {
		cqe.WRID = a.recvWR.ID
		cqe.Addr = a.recvWR.Addr
		if a.data != nil {
			if mr, err := n.Mem.FindLocal(a.recvWR.Addr, a.msgLen); err == nil {
				copy(mr.Slice(a.recvWR.Addr, a.msgLen), a.data)
			} else if a.recvWR.Addr != 0 {
				// Receive buffer no longer registered (e.g. dereg raced the
				// delivery): data still reaches the CQE, but the dropped
				// DMA is counted, never silent.
				n.Counters.LocalProtErrs++
			}
			cqe.Data = a.data
		}
	}
	if a.op == OpWriteImm {
		// The recv WQE (when one was consumed) only carried the wakeup;
		// the data landed at the remote address, and that is what the
		// completion reports.
		cqe.Addr = a.raddr
	}
	cost := n.Cfg.CompletionCost + n.touchQP(qp.QPN)
	qp.pushRecvCQE(cost, func() { qp.RecvCQ.push(cqe) })
}

// --- ack generation -------------------------------------------------------

// scheduleAck coalesces acknowledgements: immediate on message boundaries
// every AckEvery packets, otherwise a delayed ack timer.
func (qp *QP) scheduleAck(boundary bool) {
	qp.pktsSinceAck++
	if (boundary && qp.pktsSinceAck >= qp.nic.Cfg.AckEvery) || qp.pktsSinceAck >= qp.nic.Cfg.AckEvery*4 {
		qp.sendAckNow()
		return
	}
	if !qp.ackTimer.Pending() {
		qp.ackTimer = qp.nic.eng.After(qp.nic.Cfg.AckDelay, qp.ackFn)
	}
}

func (qp *QP) sendAckNow() {
	n := qp.nic
	n.eng.Cancel(qp.ackTimer)
	qp.ackTimer = sim.Event{}
	qp.pktsSinceAck = 0
	n.Counters.AcksSent++
	n.sendCtrl(qp.RemoteNode, hdr{Op: opAck, DstQPN: qp.RemoteQPN, SrcQPN: qp.QPN, AckPSN: qp.expected})
}

// --- ack / nak handling at the requester -----------------------------------

// handleAck retires unacked WRs whose PSN range is fully covered by the
// cumulative ack. Any forward movement of the cumulative ack counts as
// progress and resets the retry budget — a multi-megabyte WR paced down by
// DCQCN must not trip the RTO while it is advancing.
func (qp *QP) handleAck(ackPSN uint32) {
	n := qp.nic
	progressed := false
	if ackPSN > qp.lastSeenAck {
		qp.lastSeenAck = ackPSN
		progressed = true
	}
	// READ WRs stay in the list past the cumulative ack: the responder's
	// receive edge jumps over a READ's PSN range when it accepts the
	// request, so a later SEND's ack can cover a READ whose response is
	// still streaming. Only the response stream retires a READ
	// (handleReadResp); the ack walks over it here.
	for i := 0; i < len(qp.unacked); {
		wr := qp.unacked[i]
		if wr.lastPSN >= ackPSN {
			break
		}
		if wr.Op == OpRead {
			i++
			continue
		}
		// Compact in place rather than re-slicing: [1:] would walk the
		// backing array forward and force the next append to grow it.
		copy(qp.unacked[i:], qp.unacked[i+1:])
		qp.unacked = qp.unacked[:len(qp.unacked)-1]
		qp.cqeDone = append(qp.cqeDone, wr)
		qp.pushSendCQE(n.Cfg.CompletionCost, qp.cqeDoneFn)
	}
	if progressed {
		qp.retries = 0
		qp.rnrRetries = 0
		qp.resetRTO()
	}
}

func (qp *QP) handleNak(h *hdr) {
	n := qp.nic
	switch h.Nak {
	case nakAccess:
		// Requester side of a remote-access violation: the responder
		// already broke its half; mirror the accounting here so both ends
		// of the wire agree on why the QP died.
		n.Counters.AccessErrors++
		qp.Counters.RemoteAccessErrs++
		n.tel.Flight.Record(n.eng.Now(), telemetry.CatRemoteAccess, int32(n.Node), qp.QPN, int64(h.SrcQPN), 2)
		n.tel.Trace.Instant("remote.access", n.track, n.eng.Now(), int64(qp.QPN))
		qp.enterError(StatusRemoteAccessErr)
	case nakRNR:
		n.Counters.RNRNakRecv++
		qp.Counters.RNRNakRecv++
		n.tel.Flight.Record(n.eng.Now(), telemetry.CatRNRNakRecv, int32(n.Node), qp.QPN, int64(qp.rnrRetries), 0)
		n.tel.Trace.Instant("rnr.nak.recv", n.track, n.eng.Now(), int64(qp.QPN))
		qp.handleAck(h.AckPSN)
		qp.rnrRetries++
		if qp.rnrRetries > n.Cfg.RNRRetryLimit {
			qp.enterError(StatusRNRRetryExceeded)
			return
		}
		// The backoff window is the recovery residency this RNR costs.
		// A NAK burst (one per rejected packet) extends the window rather
		// than stacking it, so only the wall-clock extension is charged.
		now := n.eng.Now()
		until := now.Add(n.Cfg.RNRTimer)
		add := n.Cfg.RNRTimer
		if qp.rnrBackoffUntil > now {
			add = until.Sub(qp.rnrBackoffUntil)
		}
		if add > 0 {
			qp.Counters.RNRRecoveryNs += int64(add)
		}
		qp.rnrBackoffUntil = until
		n.eng.At(qp.rnrBackoffUntil, func() {
			if qp.State == QPRTS {
				qp.retransmitUnacked()
			}
		})
	case nakSeqErr:
		n.Counters.SeqNakRecv++
		qp.Counters.SeqNakRecv++
		qp.handleAck(h.AckPSN)
		qp.retransmitUnacked()
	}
}

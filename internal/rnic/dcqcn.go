package rnic

import (
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// DCQCNConfig parameterises the end-to-end congestion control loop
// (Zhu et al., SIGCOMM'15) that Alibaba deploys fine-tuned (§II-C). The
// defaults follow the paper's published constants scaled to a 25 Gbps
// link.
type DCQCNConfig struct {
	Enabled bool

	G           float64      // alpha EWMA gain
	AlphaTimer  sim.Duration // alpha decay period when no CNPs arrive
	RateTimer   sim.Duration // rate-increase timer period
	ByteCount   int64        // rate-increase byte counter threshold
	FastSteps   int          // fast-recovery stages before additive increase
	RaiBps      int64        // additive increase step
	HaiBps      int64        // hyper increase step
	MinRateBps  int64        // floor: progress guarantee
	CNPReactMin sim.Duration // min spacing between rate cuts (one per CNP window)
}

// DefaultDCQCN returns the standard parameter set.
func DefaultDCQCN() DCQCNConfig {
	return DCQCNConfig{
		Enabled:     true,
		G:           1.0 / 16,
		AlphaTimer:  55 * sim.Microsecond,
		RateTimer:   300 * sim.Microsecond,
		ByteCount:   10 << 20,
		FastSteps:   5,
		RaiBps:      400_000_000, // 50 MB/s
		HaiBps:      2_000_000_000,
		MinRateBps:  100_000_000,
		CNPReactMin: 50 * sim.Microsecond,
	}
}

// dcqcnState is the per-QP reaction point.
type dcqcnState struct {
	cfg     *DCQCNConfig
	eng     *sim.Engine
	lineBps int64
	nic     *NIC // telemetry sink; nil in bare unit tests
	qpn     uint32

	rc, rt  int64 // current and target rate (bits/s)
	alpha   float64
	lastCut sim.Time

	timerEvents int   // rate-timer expiries since last cut
	byteEvents  int   // byte-counter expiries since last cut
	bytesSent   int64 // toward the byte counter

	alphaEv sim.Event
	rateEv  sim.Event

	// RateCuts counts CNP-triggered reductions (diagnostics).
	RateCuts int64
}

func newDCQCN(cfg *DCQCNConfig, eng *sim.Engine, lineBps int64, nic *NIC, qpn uint32) *dcqcnState {
	s := &dcqcnState{cfg: cfg, eng: eng, lineBps: lineBps, nic: nic, qpn: qpn,
		rc: lineBps, rt: lineBps, alpha: 1, lastCut: -1 << 60}
	return s
}

// Rate returns the current sending rate in bits/s.
func (s *dcqcnState) Rate() int64 {
	if s == nil || !s.cfg.Enabled {
		return 0 // 0 = unlimited (line rate)
	}
	return s.rc
}

// onCNP is the reaction-point cut. At most one cut per CNPReactMin.
func (s *dcqcnState) onCNP() {
	if !s.cfg.Enabled {
		return
	}
	now := s.eng.Now()
	if now.Sub(s.lastCut) < s.cfg.CNPReactMin {
		// Alpha still absorbs the congestion signal.
		s.alpha = (1-s.cfg.G)*s.alpha + s.cfg.G
		return
	}
	s.lastCut = now
	s.RateCuts++
	s.rt = s.rc
	s.rc = int64(float64(s.rc) * (1 - s.alpha/2))
	if s.rc < s.cfg.MinRateBps {
		s.rc = s.cfg.MinRateBps
	}
	if n := s.nic; n != nil {
		n.dcqcnCuts.Inc()
		n.tel.Flight.Record(now, telemetry.CatDCQCNCut, int32(n.Node), s.qpn, s.rc, s.rt)
		n.tel.Trace.Instant("dcqcn.cut", n.track, now, s.rc)
	}
	s.alpha = (1-s.cfg.G)*s.alpha + s.cfg.G
	s.timerEvents, s.byteEvents, s.bytesSent = 0, 0, 0
	s.armAlpha()
	s.armRate()
}

func (s *dcqcnState) armAlpha() {
	s.eng.Cancel(s.alphaEv)
	s.alphaEv = s.eng.After(s.cfg.AlphaTimer, func() {
		s.alpha *= 1 - s.cfg.G
		if s.alpha > 0.001 {
			s.armAlpha()
		}
	})
}

func (s *dcqcnState) armRate() {
	s.eng.Cancel(s.rateEv)
	s.rateEv = s.eng.After(s.cfg.RateTimer, func() {
		s.timerEvents++
		s.increase()
		if s.rc < s.lineBps {
			s.armRate()
		}
	})
}

// onBytes feeds the byte counter from the transmit path.
func (s *dcqcnState) onBytes(n int) {
	if s == nil || !s.cfg.Enabled || s.rc >= s.lineBps {
		return
	}
	s.bytesSent += int64(n)
	if s.bytesSent >= s.cfg.ByteCount {
		s.bytesSent = 0
		s.byteEvents++
		s.increase()
	}
}

// increase implements the three-stage recovery.
func (s *dcqcnState) increase() {
	minEv := s.timerEvents
	if s.byteEvents < minEv {
		minEv = s.byteEvents
	}
	maxEv := s.timerEvents
	if s.byteEvents > maxEv {
		maxEv = s.byteEvents
	}
	switch {
	case maxEv <= s.cfg.FastSteps: // fast recovery toward target
		// no target change
	case minEv > s.cfg.FastSteps: // hyper increase
		s.rt += s.cfg.HaiBps
	default: // additive increase
		s.rt += s.cfg.RaiBps
	}
	if s.rt > s.lineBps {
		s.rt = s.lineBps
	}
	s.rc = (s.rc + s.rt) / 2
	// Snap to line rate once close: integer halving otherwise converges
	// to lineBps-1 and keeps the increase timer alive forever.
	if s.rc >= s.lineBps-1000 {
		s.rc = s.lineBps
	}
}

package rnic

import (
	"bytes"
	"testing"

	"xrdma/internal/fabric"
	"xrdma/internal/sim"
)

// rig is a two-host harness over a small clos fabric.
type rig struct {
	eng    *sim.Engine
	fab    *fabric.Fabric
	a, b   *NIC
	qa, qb *QP
}

func newRig(t testing.TB, cfg Config) *rig {
	t.Helper()
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.DefaultConfig(), 1)
	fabric.BuildClos(fab, fabric.SmallClos())
	a := New(eng, fab.Host(0), cfg)
	b := New(eng, fab.Host(5), cfg) // cross-ToR path
	qa, qb := ConnectLoopback(a, b, 128)
	return &rig{eng: eng, fab: fab, a: a, b: b, qa: qa, qb: qb}
}

func postRecvN(t testing.TB, qp *QP, n, size int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := qp.PostRecv(RecvWR{ID: uint64(i), Len: size}); err != nil {
			t.Fatalf("PostRecv: %v", err)
		}
	}
}

func TestSendRecvSmall(t *testing.T) {
	r := newRig(t, DefaultConfig())
	postRecvN(t, r.qb, 1, 4096)
	payload := []byte("hello rdma world")
	if err := r.qa.PostSend(&SendWR{ID: 7, Op: OpSend, Len: len(payload), Data: payload}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	got := r.qb.RecvCQ.Poll(10)
	if len(got) != 1 {
		t.Fatalf("recv CQEs = %d, want 1", len(got))
	}
	if got[0].Status != StatusOK || got[0].Len != len(payload) || !bytes.Equal(got[0].Data, payload) {
		t.Fatalf("bad recv CQE: %+v", got[0])
	}
	sc := r.qa.SendCQ.Poll(10)
	if len(sc) != 1 || sc[0].WRID != 7 || sc[0].Status != StatusOK {
		t.Fatalf("bad send CQE: %+v", sc)
	}
}

func TestSendLatencyCalibration(t *testing.T) {
	r := newRig(t, DefaultConfig())
	postRecvN(t, r.qb, 1, 4096)
	var done sim.Time
	r.qb.RecvCQ.OnCompletion(func() { done = r.eng.Now() })
	r.qa.PostSend(&SendWR{Op: OpSend, Len: 64})
	r.eng.Run()
	lat := sim.Duration(done)
	// One-way small message on quiet fabric: ~1.5–4 µs.
	if lat < 1*sim.Microsecond || lat > 5*sim.Microsecond {
		t.Fatalf("64B one-way latency %v outside [1µs, 5µs]", lat)
	}
}

func TestMultiPacketSend(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	postRecvN(t, r.qb, 1, 64<<10)
	payload := make([]byte, 20000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	r.qa.PostSend(&SendWR{ID: 1, Op: OpSend, Len: len(payload), Data: payload})
	r.eng.Run()
	got := r.qb.RecvCQ.Poll(10)
	if len(got) != 1 || !bytes.Equal(got[0].Data, payload) {
		t.Fatalf("multi-packet payload corrupted (got %d CQEs)", len(got))
	}
	if r.a.Counters.PktsSent < 5 {
		t.Fatalf("expected ≥5 packets for 20000B at MTU 4096, sent %d", r.a.Counters.PktsSent)
	}
}

func TestSendImm(t *testing.T) {
	r := newRig(t, DefaultConfig())
	postRecvN(t, r.qb, 1, 4096)
	r.qa.PostSend(&SendWR{Op: OpSendImm, Len: 8, Imm: 0xdeadbeef})
	r.eng.Run()
	got := r.qb.RecvCQ.Poll(1)
	if len(got) != 1 || !got[0].HasImm || got[0].Imm != 0xdeadbeef {
		t.Fatalf("immediate lost: %+v", got)
	}
}

func TestWriteIntoMR(t *testing.T) {
	r := newRig(t, DefaultConfig())
	mr := r.b.Mem.Register(8192, RegNonContinuous)
	payload := []byte("one-sided write payload")
	r.qa.PostSend(&SendWR{ID: 2, Op: OpWrite, Len: len(payload), Data: payload,
		RAddr: mr.Base + 100, RKey: mr.RKey})
	r.eng.Run()
	if !bytes.Equal(mr.Slice(mr.Base+100, len(payload)), payload) {
		t.Fatal("write did not land in remote MR")
	}
	// Plain write must be invisible to the receiver application.
	if r.qb.RecvCQ.Len() != 0 {
		t.Fatal("plain WRITE raised a receive CQE")
	}
	sc := r.qa.SendCQ.Poll(1)
	if len(sc) != 1 || sc[0].Status != StatusOK {
		t.Fatalf("write completion missing: %+v", sc)
	}
}

func TestWriteImmConsumesRecvWR(t *testing.T) {
	r := newRig(t, DefaultConfig())
	mr := r.b.Mem.Register(4096, RegNonContinuous)
	postRecvN(t, r.qb, 1, 0)
	r.qa.PostSend(&SendWR{Op: OpWriteImm, Len: 16, RAddr: mr.Base, RKey: mr.RKey, Imm: 42})
	r.eng.Run()
	got := r.qb.RecvCQ.Poll(1)
	if len(got) != 1 || got[0].Imm != 42 || !got[0].HasImm {
		t.Fatalf("WriteImm CQE missing: %+v", got)
	}
	if r.qb.RecvQueueLen() != 0 {
		t.Fatal("WriteImm did not consume the recv WQE")
	}
}

func TestZeroByteWrite(t *testing.T) {
	// The keepalive probe: zero-byte RDMA Write needs no rkey, no recv
	// WQE, no receiver CPU — just a hardware ack.
	r := newRig(t, DefaultConfig())
	r.qa.PostSend(&SendWR{ID: 3, Op: OpWrite, Len: 0})
	r.eng.Run()
	sc := r.qa.SendCQ.Poll(1)
	if len(sc) != 1 || sc[0].Status != StatusOK {
		t.Fatalf("zero-byte write not acked: %+v", sc)
	}
	if r.qb.RecvCQ.Len() != 0 {
		t.Fatal("zero-byte write woke the receiver")
	}
}

func TestReadFetchesRemote(t *testing.T) {
	r := newRig(t, DefaultConfig())
	mr := r.b.Mem.Register(64<<10, RegNonContinuous)
	want := make([]byte, 10000)
	for i := range want {
		want[i] = byte(i ^ 0x5a)
	}
	copy(mr.Slice(mr.Base, len(want)), want)
	lmr := r.a.Mem.Register(64<<10, RegNonContinuous)
	r.qa.PostSend(&SendWR{ID: 4, Op: OpRead, Len: len(want), Local: lmr.Base,
		RAddr: mr.Base, RKey: mr.RKey})
	r.eng.Run()
	sc := r.qa.SendCQ.Poll(1)
	if len(sc) != 1 || sc[0].Status != StatusOK {
		t.Fatalf("read completion: %+v", sc)
	}
	if !bytes.Equal(sc[0].Data, want) {
		t.Fatal("read data mismatch in CQE")
	}
	if !bytes.Equal(lmr.Slice(lmr.Base, len(want)), want) {
		t.Fatal("read data not scattered to local MR")
	}
	if r.qb.RecvCQ.Len() != 0 || r.qb.SendCQ.Len() != 0 {
		t.Fatal("READ involved responder CQs")
	}
}

func TestRKeyViolationBreaksQP(t *testing.T) {
	r := newRig(t, DefaultConfig())
	mr := r.b.Mem.Register(4096, RegNonContinuous)
	// Out of bounds by one byte.
	r.qa.PostSend(&SendWR{ID: 5, Op: OpWrite, Len: 100, RAddr: mr.Base + 4000, RKey: mr.RKey})
	r.eng.Run()
	sc := r.qa.SendCQ.Poll(1)
	if len(sc) != 1 || sc[0].Status != StatusRemoteAccessErr {
		t.Fatalf("expected remote access error, got %+v", sc)
	}
	if r.qa.State != QPError {
		t.Fatalf("requester QP state = %v, want ERROR", r.qa.State)
	}
	if r.b.Counters.AccessErrors == 0 {
		t.Fatal("responder did not count the access error")
	}
}

func TestBadRKey(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.qa.PostSend(&SendWR{Op: OpWrite, Len: 8, RAddr: 0x1000, RKey: 9999})
	r.eng.Run()
	sc := r.qa.SendCQ.Poll(1)
	if len(sc) != 1 || sc[0].Status != StatusRemoteAccessErr {
		t.Fatalf("expected access error for bad rkey, got %+v", sc)
	}
}

func TestRNRNakAndRecovery(t *testing.T) {
	r := newRig(t, DefaultConfig())
	// No recv buffer: first send hits RNR; post a buffer before the
	// retry fires and the message must still arrive.
	r.qa.PostSend(&SendWR{ID: 6, Op: OpSend, Len: 32})
	r.eng.RunFor(20 * sim.Microsecond)
	if r.b.Counters.RNRNakSent == 0 {
		t.Fatal("no RNR NAK generated")
	}
	postRecvN(t, r.qb, 1, 4096)
	r.eng.Run()
	if got := r.qb.RecvCQ.Poll(1); len(got) != 1 || got[0].Status != StatusOK {
		t.Fatalf("message lost after RNR recovery: %+v", got)
	}
	if sc := r.qa.SendCQ.Poll(1); len(sc) != 1 || sc[0].Status != StatusOK {
		t.Fatalf("sender completion after RNR: %+v", sc)
	}
	if r.a.Counters.RNRNakRecv == 0 {
		t.Fatal("sender did not count RNR")
	}
}

func TestRNRRetryExhaustionBreaksQP(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RNRRetryLimit = 3
	r := newRig(t, cfg)
	r.qa.PostSend(&SendWR{Op: OpSend, Len: 32})
	r.eng.Run()
	sc := r.qa.SendCQ.Poll(1)
	if len(sc) != 1 || sc[0].Status != StatusRNRRetryExceeded {
		t.Fatalf("expected RNR retry exhaustion, got %+v", sc)
	}
	if r.qa.State != QPError {
		t.Fatal("QP should be in ERROR after RNR exhaustion")
	}
}

func TestDropRecoveryViaNak(t *testing.T) {
	r := newRig(t, DefaultConfig())
	postRecvN(t, r.qb, 4, 64<<10)
	// Drop the 3rd data packet once.
	dropped := false
	r.a.FaultHook = func(p *fabric.Packet) (bool, sim.Duration) {
		h, ok := p.Payload.(*hdr)
		if ok && h.Op == OpSend && h.Offset == 2*4096 && !dropped {
			dropped = true
			return true, 0
		}
		return false, 0
	}
	payload := make([]byte, 16<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	r.qa.PostSend(&SendWR{ID: 9, Op: OpSend, Len: len(payload), Data: payload})
	r.eng.Run()
	if !dropped {
		t.Fatal("fault hook never fired")
	}
	got := r.qb.RecvCQ.Poll(1)
	if len(got) != 1 || !bytes.Equal(got[0].Data, payload) {
		t.Fatal("payload not recovered after drop")
	}
	if r.b.Counters.SeqNakSent == 0 {
		t.Fatal("receiver never NAKed the gap")
	}
}

func TestRTORecoveryWhenAckLost(t *testing.T) {
	r := newRig(t, DefaultConfig())
	postRecvN(t, r.qb, 2, 4096)
	// Drop every ack once so the sender must RTO-retransmit.
	drops := 0
	r.b.FaultHook = func(p *fabric.Packet) (bool, sim.Duration) {
		h, ok := p.Payload.(*hdr)
		if ok && h.Op == opAck && drops < 3 {
			drops++
			return true, 0
		}
		return false, 0
	}
	r.qa.PostSend(&SendWR{ID: 10, Op: OpSend, Len: 128})
	r.eng.Run()
	if sc := r.qa.SendCQ.Poll(1); len(sc) != 1 || sc[0].Status != StatusOK {
		t.Fatalf("send never completed after ack loss: %+v", sc)
	}
	if r.a.Counters.Retransmits == 0 {
		t.Fatal("no RTO retransmission counted")
	}
}

func TestCrashCausesRetryExceeded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetryLimit = 3
	r := newRig(t, cfg)
	postRecvN(t, r.qb, 1, 4096)
	r.b.Crash()
	r.qa.PostSend(&SendWR{ID: 11, Op: OpWrite, Len: 0})
	r.eng.Run()
	sc := r.qa.SendCQ.Poll(1)
	if len(sc) != 1 || sc[0].Status != StatusRetryExceeded {
		t.Fatalf("expected retry-exceeded after crash, got %+v", sc)
	}
	if r.qa.State != QPError {
		t.Fatal("QP should break after peer crash")
	}
}

func TestSQFullRejected(t *testing.T) {
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.DefaultConfig(), 1)
	fabric.BuildClos(fab, fabric.SmallClos())
	a := New(eng, fab.Host(0), DefaultConfig())
	b := New(eng, fab.Host(1), DefaultConfig())
	qa, _ := ConnectLoopback(a, b, 4)
	for i := 0; i < 4; i++ {
		if err := qa.PostSend(&SendWR{Op: OpWrite, Len: 1 << 20}); err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
	}
	if err := qa.PostSend(&SendWR{Op: OpWrite, Len: 64}); err != ErrSQFull {
		t.Fatalf("expected ErrSQFull, got %v", err)
	}
}

func TestPostSendWrongState(t *testing.T) {
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.DefaultConfig(), 1)
	fabric.BuildClos(fab, fabric.SmallClos())
	a := New(eng, fab.Host(0), DefaultConfig())
	qp := a.AllocQPNow(8, 8, NewCQ(16), NewCQ(16), nil)
	if err := qp.PostSend(&SendWR{Op: OpSend, Len: 8}); err == nil {
		t.Fatal("PostSend in RESET should fail")
	}
}

func TestQPStateMachine(t *testing.T) {
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.DefaultConfig(), 1)
	fabric.BuildClos(fab, fabric.SmallClos())
	a := New(eng, fab.Host(0), DefaultConfig())
	qp := a.AllocQPNow(8, 8, NewCQ(16), NewCQ(16), nil)
	if err := a.ModifyQPNow(qp, QPRTS, 0, 0); err == nil {
		t.Fatal("RESET → RTS must be rejected")
	}
	if err := a.ModifyQPNow(qp, QPInit, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.ModifyQPNow(qp, QPInit, 0, 0); err == nil {
		t.Fatal("INIT → INIT must be rejected")
	}
	if err := a.ModifyQPNow(qp, QPRTR, 1, 99); err != nil {
		t.Fatal(err)
	}
	if err := a.ModifyQPNow(qp, QPRTS, 0, 0); err != nil {
		t.Fatal(err)
	}
	if qp.RemoteQPN != 99 {
		t.Fatal("RTR did not wire the remote")
	}
	// Any state → RESET, reusable afterwards.
	if err := a.ModifyQPNow(qp, QPReset, 0, 0); err != nil {
		t.Fatal(err)
	}
	if qp.State != QPReset || qp.RemoteQPN != 0 {
		t.Fatal("reset did not clear state")
	}
	if err := a.ModifyQPNow(qp, QPInit, 0, 0); err != nil {
		t.Fatalf("recycled QP must accept INIT: %v", err)
	}
}

func TestManyMessagesInOrder(t *testing.T) {
	r := newRig(t, DefaultConfig())
	const n = 120
	postRecvN(t, r.qb, 120, 4096)
	for i := 0; i < n; i++ {
		r.qa.PostSend(&SendWR{ID: uint64(i), Op: OpSendImm, Len: 200, Imm: uint32(i)})
	}
	r.eng.Run()
	got := r.qb.RecvCQ.Poll(n + 10)
	if len(got) != n {
		t.Fatalf("received %d, want %d", len(got), n)
	}
	for i, c := range got {
		if c.Imm != uint32(i) {
			t.Fatalf("message %d out of order (imm %d)", i, c.Imm)
		}
	}
	if r.qa.Counters.MsgsSent != n || r.qb.Counters.MsgsRecv != n {
		t.Fatalf("counters: sent %d recv %d", r.qa.Counters.MsgsSent, r.qb.Counters.MsgsRecv)
	}
}

func TestUnsignaledNoCQE(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.qa.PostSend(&SendWR{Op: OpWrite, Len: 0, Unsignaled: true})
	r.eng.Run()
	if r.qa.SendCQ.Len() != 0 {
		t.Fatal("unsignaled WR produced a CQE")
	}
}

func TestQPCacheCounters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QPCacheEntries = 2
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.DefaultConfig(), 1)
	fabric.BuildClos(fab, fabric.SmallClos())
	a := New(eng, fab.Host(0), cfg)
	b := New(eng, fab.Host(1), cfg)
	// 4 QPs through a 2-entry cache, round-robin → steady misses.
	qps := make([]*QP, 4)
	for i := range qps {
		qps[i], _ = ConnectLoopback(a, b, 16)
	}
	for round := 0; round < 10; round++ {
		for _, qp := range qps {
			qp.PostSend(&SendWR{Op: OpWrite, Len: 0, Unsignaled: true})
		}
		eng.Run()
	}
	if a.Counters.QPCacheMisses < 20 {
		t.Fatalf("expected heavy cache misses, got %d", a.Counters.QPCacheMisses)
	}
	// One hot QP should hit.
	h0, m0 := a.Counters.QPCacheHits, a.Counters.QPCacheMisses
	for i := 0; i < 10; i++ {
		qps[0].PostSend(&SendWR{Op: OpWrite, Len: 0, Unsignaled: true})
		eng.Run()
	}
	if a.Counters.QPCacheMisses-m0 > 1 {
		t.Fatalf("hot QP missing: %d new misses", a.Counters.QPCacheMisses-m0)
	}
	if a.Counters.QPCacheHits == h0 {
		t.Fatal("hot QP never hit the cache")
	}
}

func TestSRQSharing(t *testing.T) {
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.DefaultConfig(), 1)
	fabric.BuildClos(fab, fabric.SmallClos())
	a := New(eng, fab.Host(0), DefaultConfig())
	b := New(eng, fab.Host(1), DefaultConfig())
	srq := NewSRQ(64)
	recvCQ := NewCQ(64)
	// Two QPs on b share the SRQ.
	var bqs []*QP
	var aqs []*QP
	for i := 0; i < 2; i++ {
		qa := a.AllocQPNow(16, 16, NewCQ(32), NewCQ(32), nil)
		qb := b.AllocQPNow(16, 16, NewCQ(32), recvCQ, srq)
		for _, st := range []QPState{QPInit, QPRTR, QPRTS} {
			a.ModifyQPNow(qa, st, b.Node, qb.QPN)
			b.ModifyQPNow(qb, st, a.Node, qa.QPN)
		}
		aqs = append(aqs, qa)
		bqs = append(bqs, qb)
	}
	for i := 0; i < 4; i++ {
		srq.Post(RecvWR{ID: uint64(i), Len: 4096})
	}
	aqs[0].PostSend(&SendWR{Op: OpSend, Len: 10})
	aqs[1].PostSend(&SendWR{Op: OpSend, Len: 10})
	eng.Run()
	if recvCQ.Len() != 2 {
		t.Fatalf("SRQ delivered %d messages, want 2", recvCQ.Len())
	}
	if srq.Len() != 2 {
		t.Fatalf("SRQ has %d buffers left, want 2", srq.Len())
	}
	// PostRecv on an SRQ-bound QP must fail.
	if err := bqs[0].PostRecv(RecvWR{}); err == nil {
		t.Fatal("PostRecv on SRQ-bound QP should fail")
	}
	// Exhaust the SRQ → RNR.
	aqs[0].PostSend(&SendWR{Op: OpSend, Len: 10})
	aqs[0].PostSend(&SendWR{Op: OpSend, Len: 10})
	aqs[1].PostSend(&SendWR{Op: OpSend, Len: 10})
	eng.RunFor(30 * sim.Microsecond)
	if b.Counters.RNRNakSent == 0 {
		t.Fatal("exhausted SRQ should RNR")
	}
}

func TestDCQCNCutsUnderIncast(t *testing.T) {
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.DefaultConfig(), 1)
	fabric.BuildClos(fab, fabric.SmallClos())
	cfg := DefaultConfig()
	victim := New(eng, fab.Host(0), cfg)
	_ = victim
	senders := make([]*NIC, 3)
	sqs := make([]*QP, 3)
	for i := range senders {
		senders[i] = New(eng, fab.Host(fabric.NodeID(i+1)), cfg)
		sqs[i], _ = ConnectLoopback(senders[i], victim, 256)
	}
	// Sustained 3:1 incast of 1 MB writes.
	for round := 0; round < 8; round++ {
		for i, qp := range sqs {
			mr := victim.Mem.Register(1<<20, RegNonContinuous)
			qp.PostSend(&SendWR{ID: uint64(round*10 + i), Op: OpWrite, Len: 1 << 20,
				RAddr: mr.Base, RKey: mr.RKey})
		}
	}
	eng.Run()
	var cnps, cuts int64
	for i, s := range senders {
		cnps += s.Counters.CNPRecv
		cuts += sqs[i].rate.RateCuts
	}
	if victim.Counters.CNPSent == 0 {
		t.Fatal("victim never sent CNPs under incast")
	}
	if cnps == 0 || cuts == 0 {
		t.Fatalf("DCQCN never reacted: cnps=%d cuts=%d", cnps, cuts)
	}
	if fab.Stats.ECNMarks == 0 {
		t.Fatal("no ECN marks under incast")
	}
}

func TestHWCommandQueueSerializes(t *testing.T) {
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.DefaultConfig(), 1)
	fabric.BuildClos(fab, fabric.SmallClos())
	a := New(eng, fab.Host(0), DefaultConfig())
	var doneTimes []sim.Time
	for i := 0; i < 3; i++ {
		a.CreateQP(8, 8, NewCQ(8), NewCQ(8), nil, func(qp *QP) {
			doneTimes = append(doneTimes, eng.Now())
		})
	}
	eng.Run()
	if len(doneTimes) != 3 {
		t.Fatalf("created %d QPs", len(doneTimes))
	}
	for i, ts := range doneTimes {
		want := sim.Time(QPCreateCost) * sim.Time(i+1)
		if ts != want {
			t.Fatalf("QP %d created at %v, want %v (serialized)", i, ts, want)
		}
	}
}

func TestMemoryRegistry(t *testing.T) {
	m := NewMemory()
	mr1 := m.Register(4096, RegNonContinuous)
	mr2 := m.Register(8192, RegHugePage)
	if m.Regions() != 2 || m.RegisteredBytes != 4096+8192 {
		t.Fatalf("registry accounting wrong: %d regions, %d bytes", m.Regions(), m.RegisteredBytes)
	}
	if _, err := m.Lookup(mr1.RKey, mr1.Base, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Lookup(mr1.RKey, mr1.Base, 4097); err == nil {
		t.Fatal("overrun lookup must fail")
	}
	if _, err := m.Lookup(mr2.RKey, mr1.Base, 16); err == nil {
		t.Fatal("wrong-key lookup must fail")
	}
	if _, err := m.FindLocal(mr2.Base+100, 10); err != nil {
		t.Fatal(err)
	}
	m.Deregister(mr1)
	if _, err := m.Lookup(mr1.RKey, mr1.Base, 16); err == nil {
		t.Fatal("deregistered MR still accessible")
	}
	if m.RegisteredBytes != 8192 {
		t.Fatalf("bytes after dereg = %d", m.RegisteredBytes)
	}
	m.Deregister(mr1) // double dereg is a no-op
	if m.PeakRegisteredBytes != 4096+8192 {
		t.Fatalf("peak = %d", m.PeakRegisteredBytes)
	}
}

func TestRegCostOrdering(t *testing.T) {
	// Hugepage registration of large areas must beat 4K pinning;
	// continuous must be the most expensive for big areas.
	size := 16 << 20
	nc := RegCost(size, RegNonContinuous)
	co := RegCost(size, RegContinuous)
	hp := RegCost(size, RegHugePage)
	if !(hp < nc && nc < co) {
		t.Fatalf("cost ordering hp=%v nc=%v co=%v", hp, nc, co)
	}
}

func TestDestroyQPFlushes(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.b.Crash() // nothing will complete
	r.qa.PostSend(&SendWR{ID: 77, Op: OpSend, Len: 64})
	r.eng.RunFor(10 * sim.Microsecond)
	r.a.DestroyQP(r.qa)
	r.eng.Run()
	sc := r.qa.SendCQ.Poll(10)
	if len(sc) != 1 || sc[0].Status == StatusOK {
		t.Fatalf("destroy should flush with error: %+v", sc)
	}
	if r.a.QP(r.qa.QPN) != nil {
		t.Fatal("QP still registered after destroy")
	}
}

package rnic

import (
	"testing"

	"xrdma/internal/telemetry"
)

// The per-packet transmit pipeline is the path the blame plane must not
// tax when tracing is off: every hop carries a nil-check on the trace
// bit and nothing else. BenchmarkUntracedSendPath is gated in CI at
// exactly 0 allocs/op; the traced variant below documents the armed cost
// (one PktBlame per message direction) and is not gated.

// BenchmarkUntracedSendPath drives the full requester pipeline — SQ pop,
// packet build, fabric traversal cross-ToR, hardware ack, send CQE —
// with the blame plane compiled in but no trace bit set.
func BenchmarkUntracedSendPath(b *testing.B) {
	r := newRig(b, DefaultConfig())
	var wr SendWR
	var cqes []CQE
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Zero-byte write: no rkey, no recv WQE, no receiver-side data
		// buffer — the packet path itself is what is being measured.
		wr = SendWR{ID: uint64(i), Op: OpWrite, Len: 0}
		if err := r.qa.PostSend(&wr); err != nil {
			b.Fatal(err)
		}
		r.eng.Run()
		cqes = r.qa.SendCQ.PollAppend(cqes[:0], 4)
		if len(cqes) != 1 || cqes[0].Status != StatusOK {
			b.Fatalf("iteration %d: CQEs %+v", i, cqes)
		}
	}
}

// BenchmarkTracedSendPath is the same pipeline with the trace bit armed:
// the WR carries a PktBlame accumulator that every hop stamps. The delta
// against BenchmarkUntracedSendPath is the whole per-message cost of
// the blame plane at this layer.
func BenchmarkTracedSendPath(b *testing.B) {
	r := newRig(b, DefaultConfig())
	var wr SendWR
	var cqes []CQE
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wr = SendWR{ID: uint64(i), Op: OpWrite, Len: 0, Blame: &telemetry.PktBlame{}}
		if err := r.qa.PostSend(&wr); err != nil {
			b.Fatal(err)
		}
		r.eng.Run()
		cqes = r.qa.SendCQ.PollAppend(cqes[:0], 4)
		if len(cqes) != 1 || cqes[0].Status != StatusOK {
			b.Fatalf("iteration %d: CQEs %+v", i, cqes)
		}
	}
}

// BenchmarkOneSidedReadPath drives the full one-sided requester+responder
// pipeline — SQ pop, request packet, responder PSN sequencing + deferred
// response job, response stream, PSN-cursor acceptance, send CQE — with a
// zero-byte READ so the payload copy is excluded and the protocol path
// itself is measured. Gated in CI at exactly 0 allocs/op, matching the
// two-sided send path: read state, response jobs and headers all come
// from the engine pools.
func BenchmarkOneSidedReadPath(b *testing.B) {
	r := newRig(b, DefaultConfig())
	var wr SendWR
	var cqes []CQE
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wr = SendWR{ID: uint64(i), Op: OpRead, Len: 0}
		if err := r.qa.PostSend(&wr); err != nil {
			b.Fatal(err)
		}
		r.eng.Run()
		cqes = r.qa.SendCQ.PollAppend(cqes[:0], 4)
		if len(cqes) != 1 || cqes[0].Status != StatusOK {
			b.Fatalf("iteration %d: CQEs %+v", i, cqes)
		}
	}
}

// Package cluster assembles simulated deployments: a clos fabric, one NIC
// + TCP stack + X-RDMA context per node, optional clock skew, and helpers
// for establishing the full-mesh channel sets the production systems use
// (§III Issue 1: block-server×chunk-server full-mesh connectivity).
package cluster

import (
	"fmt"

	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/tcpnet"
	"xrdma/internal/verbs"
	"xrdma/internal/xrdma"
)

// Options configures a cluster build.
type Options struct {
	Topology  fabric.Topology
	FabricCfg fabric.Config
	NICCfg    rnic.Config
	// Nodes limits how many hosts get a software stack (0 = all).
	Nodes int
	// Config mutates the per-node X-RDMA configuration.
	Config func(node int, cfg *xrdma.Config)
	// ClockSkew, when set, returns each node's wall-clock offset.
	ClockSkew func(node int) sim.Duration
	// MockPort enables the TCP fallback plane when >0.
	MockPort int
	// RecoverPort enables the channel health state machine (RDMA
	// re-establishment for degraded channels) when >0.
	RecoverPort int
	Seed        uint64
}

// Node is one machine: NIC, TCP stack, CM endpoint and X-RDMA context.
// The NIC, TCP stack and CM survive a middleware Restart; the context is
// replaced.
type Node struct {
	ID  fabric.NodeID
	NIC *rnic.NIC
	TCP *tcpnet.Stack
	CM  *verbs.CM
	Ctx *xrdma.Context
}

// Cluster owns the shared simulation state.
type Cluster struct {
	Eng   *sim.Engine
	Fab   *fabric.Fabric
	Net   *verbs.CMNetwork
	Mon   *xrdma.Monitor
	Nodes []*Node
	RNG   *sim.RNG

	opts Options // retained for Restart
}

// New builds the cluster.
func New(o Options) *Cluster {
	eng := sim.NewEngine()
	if o.FabricCfg.HostLinkBps == 0 {
		o.FabricCfg = fabric.DefaultConfig()
	}
	if o.NICCfg.MTU == 0 {
		o.NICCfg = rnic.DefaultConfig()
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	fab := fabric.New(eng, o.FabricCfg, o.Seed)
	fabric.BuildClos(fab, o.Topology)
	n := o.Nodes
	if n == 0 || n > o.Topology.Hosts() {
		n = o.Topology.Hosts()
	}
	c := &Cluster{
		Eng: eng, Fab: fab, Net: verbs.NewCMNetwork(),
		Mon: xrdma.NewMonitor(), RNG: sim.NewRNG(o.Seed),
		opts: o,
	}
	for i := 0; i < n; i++ {
		host := fab.Host(fabric.NodeID(i))
		nic := rnic.New(eng, host, o.NICCfg)
		vc := verbs.Open(nic)
		cm := verbs.NewCM(vc, c.Net, host)
		tcp := tcpnet.New(eng, host, tcpnet.DefaultConfig())
		cfg := xrdma.DefaultConfig()
		if o.Config != nil {
			o.Config(i, &cfg)
		}
		var skew sim.Duration
		if o.ClockSkew != nil {
			skew = o.ClockSkew(i)
		}
		ctx := xrdma.NewContext(xrdma.Options{
			Verbs: vc, CM: cm, Host: host, Config: cfg, Monitor: c.Mon,
			TCP: tcp, MockPort: o.MockPort, RecoverPort: o.RecoverPort, ClockSkew: skew,
			Seed: o.Seed ^ uint64(i)*0x9e3779b97f4a7c15,
		})
		c.Nodes = append(c.Nodes, &Node{ID: host.ID, NIC: nic, TCP: tcp, CM: cm, Ctx: ctx})
	}
	return c
}

// Restart replaces one node's middleware instance in place — the rolling-
// upgrade move. The old context must already be Drained (its Shutdown is
// called here); mutate edits the carried-over configuration (typically
// bumping ProtoVerMax). The NIC, TCP stack and CM endpoint survive, so
// QPNs stay monotonic and peers can re-dial the recovery listener. The
// caller re-installs OnChannel/Listen on the returned context and then
// rehydrates the handoff blob.
func (c *Cluster) Restart(node int, mutate func(cfg *xrdma.Config)) *xrdma.Context {
	n := c.Nodes[node]
	cfg := n.Ctx.Config()
	if mutate != nil {
		mutate(&cfg)
	}
	n.Ctx.Shutdown()
	host := c.Fab.Host(n.ID)
	vc := verbs.Open(n.NIC)
	var skew sim.Duration
	if c.opts.ClockSkew != nil {
		skew = c.opts.ClockSkew(node)
	}
	ctx := xrdma.NewContext(xrdma.Options{
		Verbs: vc, CM: n.CM, Host: host, Config: cfg, Monitor: c.Mon,
		TCP: n.TCP, MockPort: c.opts.MockPort, RecoverPort: c.opts.RecoverPort,
		ClockSkew: skew,
		Seed:      c.opts.Seed ^ uint64(node)*0x9e3779b97f4a7c15 ^ 0xdead,
	})
	n.Ctx = ctx
	return ctx
}

// ListenAll makes every node accept channels on port; handler (optional)
// observes each accepted channel.
func (c *Cluster) ListenAll(port int, handler func(node *Node, ch *xrdma.Channel)) {
	for _, n := range c.Nodes {
		n := n
		n.Ctx.OnChannel(func(ch *xrdma.Channel) {
			if handler != nil {
				handler(n, ch)
			}
		})
		if err := n.Ctx.Listen(port); err != nil {
			panic(fmt.Sprintf("cluster: listen %d on node %d: %v", port, n.ID, err))
		}
	}
}

// Connect establishes one channel and delivers it via done.
func (c *Cluster) Connect(from, to int, port int, done func(*xrdma.Channel, error)) {
	c.Nodes[from].Ctx.Connect(c.Nodes[to].ID, port, done)
}

// ConnectPairs dials every (from→to) pair in pairs concurrently and calls
// done with the channels (indexed like pairs) once all are up.
func (c *Cluster) ConnectPairs(pairs [][2]int, port int, done func([]*xrdma.Channel)) {
	chans := make([]*xrdma.Channel, len(pairs))
	remaining := len(pairs)
	if remaining == 0 {
		done(nil)
		return
	}
	for i, p := range pairs {
		i := i
		c.Connect(p[0], p[1], port, func(ch *xrdma.Channel, err error) {
			if err != nil {
				panic(fmt.Sprintf("cluster: connect %v: %v", p, err))
			}
			chans[i] = ch
			remaining--
			if remaining == 0 {
				done(chans)
			}
		})
	}
}

// FullMeshPairs returns every ordered (i→j, i<j) pair among the first n
// nodes.
func FullMeshPairs(n int) [][2]int {
	var out [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// FanInPairs returns (i→target) for every i ≠ target among n nodes — the
// incast pattern of Fig. 10.
func FanInPairs(n, target int) [][2]int {
	var out [][2]int
	for i := 0; i < n; i++ {
		if i != target {
			out = append(out, [2]int{i, target})
		}
	}
	return out
}

package cluster

import (
	"testing"

	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

func TestBuildAndFullMesh(t *testing.T) {
	c := New(Options{Topology: fabric.SmallClos()})
	if len(c.Nodes) != 8 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	c.ListenAll(7000, nil)
	pairs := FullMeshPairs(4)
	if len(pairs) != 6 {
		t.Fatalf("full mesh pairs = %d", len(pairs))
	}
	var chans []*xrdma.Channel
	c.ConnectPairs(pairs, 7000, func(chs []*xrdma.Channel) { chans = chs })
	c.Eng.Run()
	if len(chans) != 6 {
		t.Fatal("mesh establishment incomplete")
	}
	for _, ch := range chans {
		if ch == nil || ch.Closed() {
			t.Fatal("dead channel in mesh")
		}
	}
	// Traffic across one mesh edge.
	got := false
	server := c.Mon.Context(chans[0].Peer)
	for _, sch := range server.Channels() {
		sch.OnMessage(func(m *xrdma.Msg) { m.Reply(nil, 16) })
	}
	chans[0].SendMsg(nil, 100, func(m *xrdma.Msg, err error) { got = err == nil })
	c.Eng.Run()
	if !got {
		t.Fatal("mesh channel carried no traffic")
	}
}

func TestFanInPairs(t *testing.T) {
	pairs := FanInPairs(5, 2)
	if len(pairs) != 4 {
		t.Fatalf("fan-in pairs = %d", len(pairs))
	}
	for _, p := range pairs {
		if p[1] != 2 || p[0] == 2 {
			t.Fatalf("bad pair %v", p)
		}
	}
}

func TestClockSkewApplied(t *testing.T) {
	c := New(Options{
		Topology:  fabric.SmallClos(),
		Nodes:     2,
		ClockSkew: func(node int) sim.Duration { return sim.Duration(node) * 100 * sim.Microsecond },
	})
	c.Eng.RunFor(1 * sim.Millisecond)
	d0 := c.Nodes[0].Ctx.LocalClock()
	d1 := c.Nodes[1].Ctx.LocalClock()
	if d1-d0 != sim.Time(100*sim.Microsecond) {
		t.Fatalf("skew not applied: %v vs %v", d0, d1)
	}
}

func TestPerNodeConfig(t *testing.T) {
	c := New(Options{
		Topology: fabric.SmallClos(),
		Nodes:    2,
		Config: func(node int, cfg *xrdma.Config) {
			if node == 1 {
				cfg.WindowDepth = 7
			}
		},
	})
	if c.Nodes[0].Ctx.Config().WindowDepth == 7 || c.Nodes[1].Ctx.Config().WindowDepth != 7 {
		t.Fatal("per-node config not applied")
	}
}

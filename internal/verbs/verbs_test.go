package verbs

import (
	"testing"

	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
)

type world struct {
	eng  *sim.Engine
	fab  *fabric.Fabric
	net  *CMNetwork
	ctxs []*Context
	cms  []*CM
}

func newWorld(t testing.TB, hosts int) *world {
	t.Helper()
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.DefaultConfig(), 1)
	fabric.BuildClos(fab, fabric.ClusterClos(hosts))
	w := &world{eng: eng, fab: fab, net: NewCMNetwork()}
	for i := 0; i < hosts; i++ {
		nic := rnic.New(eng, fab.Host(fabric.NodeID(i)), rnic.DefaultConfig())
		ctx := Open(nic)
		w.ctxs = append(w.ctxs, ctx)
		w.cms = append(w.cms, NewCM(ctx, w.net, fab.Host(fabric.NodeID(i))))
	}
	return w
}

// listenEcho makes host i accept connections and remember them.
func listenEcho(t testing.TB, w *world, i, port int, got *[]*Conn) {
	t.Helper()
	err := w.cms[i].Listen(port, func(req *ConnReq) {
		qp := w.ctxs[i].NIC.AllocQPNow(64, 64, rnic.NewCQ(128), rnic.NewCQ(128), nil)
		req.Accept(qp, func(c *Conn, err error) {
			if err != nil {
				t.Errorf("accept: %v", err)
				return
			}
			*got = append(*got, c)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConnectEstablishes(t *testing.T) {
	w := newWorld(t, 4)
	var accepted []*Conn
	listenEcho(t, w, 1, 7000, &accepted)
	var conn *Conn
	var start, end sim.Time
	start = w.eng.Now()
	w.cms[0].Connect(1, 7000, nil, nil, 64, rnic.NewCQ(128), rnic.NewCQ(128), nil, func(c *Conn, err error) {
		if err != nil {
			t.Fatalf("connect: %v", err)
		}
		conn = c
		end = w.eng.Now()
	})
	w.eng.Run()
	if conn == nil || len(accepted) != 1 {
		t.Fatalf("connection not established (conn=%v accepted=%d)", conn, len(accepted))
	}
	if conn.QP.State != rnic.QPRTS || accepted[0].QP.State != rnic.QPRTS {
		t.Fatal("QPs not in RTS after establishment")
	}
	// Establishment must land in the milliseconds range dominated by QP
	// creation (§III Issue 3: ~4 ms vs ~100 µs for TCP).
	el := end.Sub(start)
	if el < 2*sim.Millisecond || el > 8*sim.Millisecond {
		t.Fatalf("establishment took %v, want milliseconds", el)
	}
	t.Logf("rdma_cm establishment: %v", el)
}

func TestConnectionCarriesTraffic(t *testing.T) {
	w := newWorld(t, 4)
	var accepted []*Conn
	listenEcho(t, w, 2, 7100, &accepted)
	var conn *Conn
	w.cms[0].Connect(2, 7100, nil, nil, 64, rnic.NewCQ(128), rnic.NewCQ(128), nil, func(c *Conn, err error) {
		conn = c
	})
	w.eng.Run()
	if conn == nil || len(accepted) != 1 {
		t.Fatal("setup failed")
	}
	srv := accepted[0]
	srv.QP.PostRecv(rnic.RecvWR{ID: 1, Len: 4096})
	payload := []byte("over the established pair")
	conn.QP.PostSend(&rnic.SendWR{ID: 2, Op: rnic.OpSend, Len: len(payload), Data: payload})
	w.eng.Run()
	got := srv.QP.RecvCQ.Poll(1)
	if len(got) != 1 || string(got[0].Data) != string(payload) {
		t.Fatalf("traffic failed: %+v", got)
	}
}

func TestRecycledQPSkipsCreation(t *testing.T) {
	w := newWorld(t, 4)
	var accepted []*Conn
	listenEcho(t, w, 1, 7200, &accepted)

	// Cold connect.
	var coldDur, warmDur sim.Duration
	var conn *Conn
	start := w.eng.Now()
	w.cms[0].Connect(1, 7200, nil, nil, 64, rnic.NewCQ(128), rnic.NewCQ(128), nil, func(c *Conn, err error) {
		if err != nil {
			t.Fatalf("cold: %v", err)
		}
		conn = c
		coldDur = w.eng.Now().Sub(start)
	})
	w.eng.Run()

	// Recycle: reset the QP (the X-RDMA QP-cache path) and reconnect.
	nic := w.ctxs[0].NIC
	if err := nic.ModifyQPNow(conn.QP, rnic.QPReset, 0, 0); err != nil {
		t.Fatal(err)
	}
	start = w.eng.Now()
	w.cms[0].Connect(1, 7200, nil, conn.QP, 64, nil, nil, nil, func(c *Conn, err error) {
		if err != nil {
			t.Fatalf("warm: %v", err)
		}
		warmDur = w.eng.Now().Sub(start)
	})
	w.eng.Run()

	if warmDur >= coldDur {
		t.Fatalf("recycled QP not faster: cold=%v warm=%v", coldDur, warmDur)
	}
	saved := coldDur - warmDur
	if saved < sim.Duration(rnic.QPCreateCost)*9/10 {
		t.Fatalf("recycling saved only %v, want ≈ creation cost %v", saved, sim.Duration(rnic.QPCreateCost))
	}
	t.Logf("cold=%v warm=%v saved=%v (%.0f%%)", coldDur, warmDur, saved, 100*float64(saved)/float64(coldDur))
}

func TestConnectRefused(t *testing.T) {
	w := newWorld(t, 2)
	var gotErr error
	w.cms[0].Connect(1, 9999, nil, nil, 16, rnic.NewCQ(16), rnic.NewCQ(16), nil, func(c *Conn, err error) {
		gotErr = err
	})
	w.eng.Run()
	if gotErr == nil {
		t.Fatal("expected refusal for unused port")
	}
}

func TestReject(t *testing.T) {
	w := newWorld(t, 2)
	w.cms[1].Listen(7300, func(req *ConnReq) { req.Reject("busy") })
	var gotErr error
	w.cms[0].Connect(1, 7300, nil, nil, 16, rnic.NewCQ(16), rnic.NewCQ(16), nil, func(c *Conn, err error) {
		gotErr = err
	})
	w.eng.Run()
	if gotErr == nil {
		t.Fatal("expected rejection error")
	}
}

func TestDuplicateListen(t *testing.T) {
	w := newWorld(t, 2)
	if err := w.cms[0].Listen(7400, func(*ConnReq) {}); err != nil {
		t.Fatal(err)
	}
	if err := w.cms[0].Listen(7400, func(*ConnReq) {}); err == nil {
		t.Fatal("duplicate listen should fail")
	}
}

func TestPrivateDataDelivered(t *testing.T) {
	w := newWorld(t, 2)
	var seen []byte
	w.cms[1].Listen(7500, func(req *ConnReq) {
		seen = req.PrivateData
		req.Reject("just checking")
	})
	w.cms[0].Connect(1, 7500, []byte("hello-cm"), nil, 16, rnic.NewCQ(16), rnic.NewCQ(16), nil, func(*Conn, error) {})
	w.eng.Run()
	if string(seen) != "hello-cm" {
		t.Fatalf("private data = %q", seen)
	}
}

func TestMassEstablishmentSerializes(t *testing.T) {
	// Many concurrent dials from one node serialize on the HW command
	// queue: total time ≈ N × (create+modify) per §VII-C.
	w := newWorld(t, 2)
	var accepted []*Conn
	listenEcho(t, w, 1, 7600, &accepted)
	const n = 16
	done := 0
	for i := 0; i < n; i++ {
		w.cms[0].Connect(1, 7600, nil, nil, 16, rnic.NewCQ(32), rnic.NewCQ(32), nil, func(c *Conn, err error) {
			if err != nil {
				t.Errorf("connect %v", err)
			}
			done++
		})
	}
	w.eng.Run()
	if done != n || len(accepted) != n {
		t.Fatalf("established %d/%d", done, n)
	}
	el := sim.Duration(w.eng.Now())
	perConn := el / n
	if perConn < 1500*sim.Microsecond {
		t.Fatalf("per-connection cost %v implausibly low (not serialized?)", perConn)
	}
	t.Logf("%d connections in %v (%v each)", n, el, perConn)
}

func TestRegMRCostOrdering(t *testing.T) {
	w := newWorld(t, 1)
	pd := w.ctxs[0].AllocPD()
	var at4k, at4m sim.Time
	start := w.eng.Now()
	pd.RegMR(4096, rnic.RegNonContinuous, func(mr *rnic.MR) { at4k = w.eng.Now() })
	w.eng.Run()
	mid := w.eng.Now()
	pd.RegMR(4<<20, rnic.RegNonContinuous, func(mr *rnic.MR) { at4m = w.eng.Now() })
	w.eng.Run()
	small := at4k.Sub(start)
	big := at4m.Sub(mid)
	if big <= small {
		t.Fatalf("4MB registration (%v) should cost more than 4KB (%v)", big, small)
	}
	if pd.MRs != 2 {
		t.Fatalf("PD counts %d MRs", pd.MRs)
	}
}

// Package verbs is the libverbs/librdmacm-shaped facade over the RNIC
// model: the API layer X-RDMA (and the baseline middlewares) program
// against, mirroring the "complex ritual" §II-A describes — context, PD,
// MR registration, QP creation, state modification, posting and polling.
//
// The connection manager reproduces librdmacm's cost structure: QP
// creation and state transitions serialize on the NIC's hardware command
// queue, address resolution and the REQ/REP/RTU rendezvous ride the
// control plane. That is what makes establishment slow (§III Issue 3) and
// what X-RDMA's QP cache attacks.
package verbs

import (
	"errors"
	"fmt"

	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
)

// Context is the device context (ibv_context analogue).
type Context struct {
	NIC *rnic.NIC
	Eng *sim.Engine
}

// Open wraps a NIC.
func Open(nic *rnic.NIC) *Context {
	return &Context{NIC: nic, Eng: nic.Engine()}
}

// PD is a protection domain. The model keeps one memory registry per NIC;
// the PD exists to mirror the API shape and to count registrations per
// owner.
type PD struct {
	ctx *Context
	MRs int
}

// AllocPD creates a protection domain.
func (c *Context) AllocPD() *PD { return &PD{ctx: c} }

// ModifyFlowLabel rotates a QP's ECMP flow label (the RoCEv2
// UDP-source-port trick). Unlike ModifyQP this is a driver fast-path
// attribute write: it does not serialize on the hardware command queue.
func (c *Context) ModifyFlowLabel(qpn uint32, label uint64) error {
	return c.NIC.ModifyFlowLabel(qpn, label)
}

// RegMR registers size bytes and calls done when the driver finishes
// (registration is a real, slow syscall: cost from rnic.RegCost).
func (pd *PD) RegMR(size int, mode rnic.RegMode, done func(*rnic.MR)) {
	pd.MRs++
	mr := pd.ctx.NIC.Mem.Register(size, mode)
	pd.ctx.Eng.After(rnic.RegCost(size, mode), func() { done(mr) })
}

// RegMRNow registers without modelling driver latency (setup-time use).
func (pd *PD) RegMRNow(size int, mode rnic.RegMode) *rnic.MR {
	pd.MRs++
	return pd.ctx.NIC.Mem.Register(size, mode)
}

// DeregMR releases a region.
func (pd *PD) DeregMR(mr *rnic.MR) {
	pd.MRs--
	pd.ctx.NIC.Mem.Deregister(mr)
}

// --- connection manager ---------------------------------------------------

// ResolveCost models rdma_resolve_addr + rdma_resolve_route.
const ResolveCost = 700 * sim.Microsecond

// CMNetwork is the rendezvous control plane connecting every node's CM —
// the role the IP network plays for librdmacm.
type CMNetwork struct {
	cms map[fabric.NodeID]*CM
}

// NewCMNetwork creates an empty control plane.
func NewCMNetwork() *CMNetwork {
	return &CMNetwork{cms: make(map[fabric.NodeID]*CM)}
}

// CM is one node's connection manager.
type CM struct {
	ctx  *Context
	net  *CMNetwork
	host *fabric.Host

	listeners map[int]func(*ConnReq)
	nextMsgID uint64
	pending   map[uint64]*dialState

	// EstablishedConns counts successful connects+accepts (monitoring).
	EstablishedConns int64
}

// ConnReq is an inbound connection request delivered to a listener.
type ConnReq struct {
	cm          *CM
	From        fabric.NodeID
	FromQPN     uint32
	Port        int
	msgID       uint64
	PrivateData []byte

	// ReplyData, when set before Accept, rides the REP back to the dialer
	// (librdmacm's responder private data) and surfaces as Conn.PeerData —
	// the channel layer's version-negotiation verdict travels here. Nil
	// keeps the REP byte-identical to the legacy exchange.
	ReplyData []byte
}

// Conn is an established RC connection.
type Conn struct {
	QP     *rnic.QP
	Remote fabric.NodeID
	// PeerData is the responder's REP private data (nil on legacy accepts).
	PeerData []byte
}

type dialState struct {
	qp   *rnic.QP
	done func(*Conn, error)
}

// cmMsg is the REQ/REP/RTU control payload.
type cmMsg struct {
	kind    uint8 // 0 REQ, 1 REP, 2 RTU, 3 REJ
	msgID   uint64
	port    int
	qpn     uint32
	private []byte
	errText string
}

// NewCM attaches a connection manager to a node.
func NewCM(ctx *Context, net *CMNetwork, host *fabric.Host) *CM {
	cm := &CM{
		ctx: ctx, net: net, host: host,
		listeners: make(map[int]func(*ConnReq)),
		pending:   make(map[uint64]*dialState),
	}
	host.AttachProto(fabric.ProtoCM, cm)
	net.cms[host.ID] = cm
	return cm
}

// Listen registers a handler for inbound requests on a port.
func (cm *CM) Listen(port int, handler func(*ConnReq)) error {
	if _, dup := cm.listeners[port]; dup {
		return fmt.Errorf("verbs: port %d already listening", port)
	}
	cm.listeners[port] = handler
	return nil
}

// Unlisten releases a port so a restarted middleware on the same node can
// re-register its listeners. Unknown ports are a no-op.
func (cm *CM) Unlisten(port int) {
	delete(cm.listeners, port)
}

// send ships a CM control message over the fabric's control class.
func (cm *CM) send(to fabric.NodeID, m *cmMsg) {
	p := cm.host.Fabric().NewPacket()
	p.Src, p.Dst, p.Size = cm.host.ID, to, 64+len(m.private)
	p.Class, p.Proto = fabric.ClassCtrl, fabric.ProtoCM
	p.FlowHash, p.Payload = uint64(cm.host.ID)<<32^uint64(to), m
	cm.host.Send(p)
}

// Connect establishes an RC connection to (remote, port). If recycledQP is
// non-nil it is reused — X-RDMA's QP cache path — skipping the expensive
// creation command. done receives the connection after the full
// REQ/REP/RTU rendezvous.
func (cm *CM) Connect(remote fabric.NodeID, port int, privateData []byte, recycledQP *rnic.QP, depth int, sendCQ, recvCQ *rnic.CQ, srq *rnic.SRQ, done func(*Conn, error)) {
	nic := cm.ctx.NIC
	proceed := func(qp *rnic.QP) {
		nic.ModifyQP(qp, rnic.QPInit, 0, 0, func(err error) {
			if err != nil {
				done(nil, err)
				return
			}
			cm.nextMsgID++
			id := cm.nextMsgID
			cm.pending[id] = &dialState{qp: qp, done: done}
			cm.send(remote, &cmMsg{kind: 0, msgID: id, port: port, qpn: qp.QPN, private: privateData})
		})
	}
	cm.ctx.Eng.After(ResolveCost, func() {
		if recycledQP != nil {
			proceed(recycledQP)
			return
		}
		nic.CreateQP(depth, depth, sendCQ, recvCQ, srq, proceed)
	})
}

// Accept completes the passive side with the given QP (create it first, or
// pass a recycled one); the QP is driven to RTS.
func (req *ConnReq) Accept(qp *rnic.QP, done func(*Conn, error)) {
	cm := req.cm
	nic := cm.ctx.NIC
	step := func(st rnic.QPState, next func()) {
		nic.ModifyQP(qp, st, req.From, req.FromQPN, func(err error) {
			if err != nil {
				cm.send(req.From, &cmMsg{kind: 3, msgID: req.msgID, errText: err.Error()})
				done(nil, err)
				return
			}
			next()
		})
	}
	step(rnic.QPInit, func() {
		step(rnic.QPRTR, func() {
			step(rnic.QPRTS, func() {
				cm.send(req.From, &cmMsg{kind: 1, msgID: req.msgID, qpn: qp.QPN, private: req.ReplyData})
				cm.EstablishedConns++
				done(&Conn{QP: qp, Remote: req.From}, nil)
			})
		})
	})
}

// Reject refuses an inbound request.
func (req *ConnReq) Reject(reason string) {
	req.cm.send(req.From, &cmMsg{kind: 3, msgID: req.msgID, errText: reason})
}

// ErrRejected is returned to the dialer when the listener rejects.
var ErrRejected = errors.New("verbs: connection rejected")

// HandlePacket implements fabric.Endpoint for the CM control plane.
func (cm *CM) HandlePacket(p *fabric.Packet) {
	m, ok := p.Payload.(*cmMsg)
	if !ok {
		return
	}
	if !cm.ctx.NIC.Alive() {
		// Crashed machine: the control plane dies with it. Dialers must
		// run their own timeout — there is no one here to REJ.
		return
	}
	switch m.kind {
	case 0: // REQ
		h, ok := cm.listeners[m.port]
		if !ok {
			cm.send(p.Src, &cmMsg{kind: 3, msgID: m.msgID, errText: "connection refused"})
			return
		}
		h(&ConnReq{cm: cm, From: p.Src, FromQPN: m.qpn, Port: m.port, msgID: m.msgID, PrivateData: m.private})
	case 1: // REP
		st, ok := cm.pending[m.msgID]
		if !ok {
			return
		}
		delete(cm.pending, m.msgID)
		nic := cm.ctx.NIC
		src := p.Src // p is recycled before the async transitions finish
		pdata := m.private
		nic.ModifyQP(st.qp, rnic.QPRTR, src, m.qpn, func(err error) {
			if err != nil {
				st.done(nil, err)
				return
			}
			nic.ModifyQP(st.qp, rnic.QPRTS, 0, 0, func(err error) {
				if err != nil {
					st.done(nil, err)
					return
				}
				cm.send(src, &cmMsg{kind: 2, msgID: m.msgID})
				cm.EstablishedConns++
				st.done(&Conn{QP: st.qp, Remote: src, PeerData: pdata}, nil)
			})
		})
	case 2: // RTU — passive side already RTS in this model; nothing to do.
	case 3: // REJ
		st, ok := cm.pending[m.msgID]
		if !ok {
			return
		}
		delete(cm.pending, m.msgID)
		st.done(nil, fmt.Errorf("%w: %s", ErrRejected, m.errText))
	}
}
